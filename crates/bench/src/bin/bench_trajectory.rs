//! Regenerates the committed performance trajectory (`BENCH_solver.json`).
//!
//! Runs the headline solver benchmarks on the in-repo harness, then a
//! traced one-week capping run whose deterministic work aggregates
//! (branch-and-bound nodes, LP iterations, per-phase wall totals) are
//! recorded next to the bench medians. The output feeds the `perf-gate`
//! binary: commit a fresh baseline with
//!
//! ```text
//! cargo run --release -p billcap-bench --bin bench_trajectory -- \
//!     --out BENCH_solver.json
//! ```
//!
//! and compare a later run against it with `perf-gate`. Set
//! `BILLCAP_BENCH_FAST=1` for a quick smoke run (CI does; the committed
//! baseline should come from a full run).

#![forbid(unsafe_code)]

use billcap_core::{BillCapper, CostMinimizer, DataCenterSystem};
use billcap_milp::MipSolver;
use billcap_obs_analyze::trajectory::{BenchPoint, BenchTrajectory, TraceAggregates};
use billcap_rt::{BenchConfig, Harness};
use billcap_sim::experiments::synthetic_system;
use billcap_sim::{
    run_month_fresh, run_month_scratch, run_month_with, MonthScratch, RiskConfig, RiskEngine,
    Scenario, Strategy,
};
use std::hint::black_box;
use std::process::ExitCode;

/// Hours in the traced reference run (one week keeps a full-accuracy
/// run under a minute while exercising every solver path).
const REFERENCE_HOURS: usize = 168;

fn bench_solvers(h: &mut Harness) {
    // Step-1 MILP by network size (the paper's Section IV-C axis).
    for n in [3usize, 5, 8, 13] {
        let system = synthetic_system(n);
        let d: Vec<f64> = (0..n).map(|i| 330.0 + 40.0 * (i % 3) as f64).collect();
        let minimizer = CostMinimizer::default();
        h.bench(&format!("step1_milp_by_sites/{n}"), || {
            let alloc = minimizer
                .solve(black_box(&system), black_box(1e8), black_box(&d))
                .expect("feasible");
            black_box(alloc.total_cost)
        });
    }

    // The full two-step decision on the paper's 3-site system.
    let system = DataCenterSystem::paper_system(1);
    let capper = BillCapper::default();
    h.bench("decide_hour/paper", || {
        let decision = capper
            .decide_hour(
                black_box(&system),
                black_box(6.0e8),
                black_box(4.8e8),
                black_box(&[360.0, 410.0, 430.0]),
                black_box(2_000.0),
            )
            .expect("feasible hour");
        black_box(decision.premium_served)
    });

    // A hard 10-site x 10-level branch-and-bound instance.
    let sys = DataCenterSystem::synthetic(10, 10);
    let background: Vec<f64> = (0..sys.len()).map(|i| 5.0 + 3.0 * i as f64).collect();
    let lambda = 0.45 * sys.total_capacity();
    let minimizer = CostMinimizer {
        solver: MipSolver::default(),
        ..Default::default()
    };
    h.bench("bnb_10x10/default_threads", || {
        let alloc = minimizer
            .solve(black_box(&sys), black_box(lambda), black_box(&background))
            .expect("feasible");
        black_box(alloc.total_cost)
    });

    // The same instance with warm starts disabled: every node cold-starts
    // from the all-slack dual basis, isolating what the parent-basis
    // warm-start protocol buys on a deep tree.
    let cold = CostMinimizer {
        solver: MipSolver {
            warm_start: false,
            ..MipSolver::default()
        },
        ..Default::default()
    };
    h.bench("bnb_10x10/cold_start", || {
        let alloc = cold
            .solve(black_box(&sys), black_box(lambda), black_box(&background))
            .expect("feasible");
        black_box(alloc.total_cost)
    });
}

/// Month-loop and Monte-Carlo benches: the fresh-allocation oracle vs
/// the scratch-reuse production path on identical inputs (the
/// allocation-reuse refactor's headline number), plus a small risk run.
fn bench_month_runs(h: &mut Harness) {
    const HOURS: usize = 48;
    let mut scenario = Scenario::paper_default(1, 42);
    scenario.workload = scenario.workload.slice(0, HOURS);
    scenario.background = scenario
        .background
        .iter()
        .map(|b| b.slice(0, HOURS))
        .collect();
    let budget = Some(Scenario::STRINGENT_BUDGET * HOURS as f64 / 720.0);

    h.bench("month_run/fresh", || {
        let report = run_month_fresh(
            black_box(&scenario),
            Strategy::CostCapping,
            black_box(budget),
            false,
            None,
        )
        .expect("month simulates");
        black_box(report.total_cost())
    });

    let mut scratch = MonthScratch::new();
    h.bench("month_run/scratch", || {
        let report = run_month_scratch(
            black_box(&scenario),
            Strategy::CostCapping,
            black_box(budget),
            false,
            None,
            &mut scratch,
        )
        .expect("month simulates");
        black_box(report.total_cost())
    });

    // A small Monte-Carlo risk run: 4 perturbed 24-hour samples on 2
    // workers (fixed thread count so the number is comparable across
    // machines).
    let config = RiskConfig {
        samples: 4,
        hours: 24,
        threads: 2,
        monthly_budget: Some(Scenario::STRINGENT_BUDGET * 24.0 / 720.0),
        ..RiskConfig::default()
    };
    let engine = RiskEngine::new(config);
    h.bench("risk_engine/4x24h", || {
        let (_, summary) = engine.run().expect("risk run");
        black_box(summary.bill.p99)
    });
}

/// Runs the traced one-week capping reference and returns its work
/// aggregates.
fn traced_reference_run() -> Result<TraceAggregates, String> {
    billcap_obs::set_enabled(true);
    billcap_obs::reset();
    let mut scenario = Scenario::paper_default(1, 42);
    scenario.workload = scenario.workload.slice(0, REFERENCE_HOURS);
    scenario.background = scenario
        .background
        .iter()
        .map(|b| b.slice(0, REFERENCE_HOURS))
        .collect();
    // The stringent monthly budget, prorated to the sliced horizon, so
    // the reference run exercises throttled hours (step 2) as well as
    // within-budget ones.
    let budget = Scenario::STRINGENT_BUDGET * REFERENCE_HOURS as f64 / 720.0;
    run_month_with(&scenario, Strategy::CostCapping, Some(budget), false)
        .map_err(|e| format!("reference run failed: {e}"))?;
    let snap = billcap_obs::snapshot();
    billcap_obs::set_enabled(false);
    Ok(TraceAggregates::from_snapshot(&snap))
}

fn run() -> Result<(), String> {
    let mut out: Option<String> = None;
    // detlint-allow(D004): CLI argv parsing in the bench binary; not decision state
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => {
                out = Some(args.next().ok_or("--out needs a file path")?);
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?}; usage: bench_trajectory [--out FILE]"
                ))
            }
        }
    }

    let mut h = Harness::with_config(BenchConfig::default());
    bench_solvers(&mut h);
    bench_month_runs(&mut h);
    // The decision-server strategy benches (cold vs incremental vs warm
    // vs cached) — the serve subsystem's perf claim lives in this file —
    // plus the telemetry-overhead replay pair (disabled vs enabled).
    billcap_bench::serve_bench::bench_decide_strategies(&mut h);
    billcap_bench::serve_bench::bench_replay_telemetry(&mut h);
    let benches: Vec<BenchPoint> = h
        .results()
        .iter()
        .map(|r| BenchPoint {
            name: r.name.clone(),
            median_ns: r.median_ns,
            min_ns: r.min_ns,
            mean_ns: r.mean_ns,
            samples: r.samples as u64,
            iters_per_sample: r.iters_per_sample,
        })
        .collect();

    eprintln!("running traced {REFERENCE_HOURS}-hour reference ...");
    let aggregates = traced_reference_run()?;
    let trajectory = BenchTrajectory::new(benches, aggregates);
    let json = trajectory.render_json();
    match &out {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("writing {path:?}: {e}"))?;
            eprintln!("trajectory written to {path}");
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
