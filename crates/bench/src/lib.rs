//! # billcap-bench
//!
//! Benchmark targets for the `billcap` reproduction, built on the
//! in-repo [`billcap_rt::Harness`] (no external benchmarking framework;
//! the workspace builds fully offline). Each target is a
//! `harness = false` binary that registers closures and prints a
//! median/min summary table. Each one regenerates part of the paper's
//! evaluation:
//!
//! * `solver_scalability` — the Section IV-C claim: step-1 MILP solve time
//!   versus network size (paper: ≤ ~2 ms at 13 sites, 5 price levels,
//!   10⁸ requests), pure-LP and integral-server variants, and the
//!   parallel branch-and-bound speedup (1/2/4/8 workers on a 10-site ×
//!   10-level step-pricing instance, with bitwise-identical objectives
//!   asserted across thread counts).
//! * `figures` — wall-clock cost of regenerating every evaluation figure
//!   (Figures 1, 3, 4, 5/6, 7/8, 9, 10); each iteration runs the same
//!   experiment code as the `paper_experiments` binary and the
//!   integration tests.
//! * `components` — substrate microbenches: Erlang-C / G/G/m sizing, step
//!   policy lookup, DC-OPF dispatch and LMP extraction, trace generation,
//!   budgeting, and realized-cost evaluation.
//! * `ablations` — design-choice costs: integral vs. relaxed server
//!   counts, best-bound vs. depth-first search, Dantzig vs. Bland pricing.
//!
//! Run everything with `cargo bench --workspace`; pass a substring to
//! filter bench names (`cargo bench --bench solver_scalability --
//! parallel`), and set `BILLCAP_BENCH_FAST=1` for a quick smoke run.
//! The figure benches also print their experiment summaries once per
//! process so a bench run doubles as a results regeneration.

#![forbid(unsafe_code)]

/// Shared helpers for the bench targets.
pub mod helpers {
    use billcap_core::DataCenterSystem;

    /// The paper's reference background demand vector.
    pub fn background() -> Vec<f64> {
        vec![360.0, 410.0, 430.0]
    }

    /// The paper system under Policy 1.
    pub fn paper_system() -> DataCenterSystem {
        DataCenterSystem::paper_system(1)
    }
}

#[cfg(test)]
mod tests {
    use super::helpers;

    #[test]
    fn helpers_build() {
        assert_eq!(helpers::background().len(), helpers::paper_system().len());
    }
}
