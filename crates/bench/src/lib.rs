//! # billcap-bench
//!
//! Criterion benchmark harness for the `billcap` reproduction. Each bench
//! target regenerates part of the paper's evaluation:
//!
//! * `solver_scalability` — the Section IV-C claim: step-1 MILP solve time
//!   versus network size (paper: ≤ ~2 ms at 13 sites, 5 price levels,
//!   10⁸ requests), plus pure-LP and integral-server variants.
//! * `figures` — wall-clock cost of regenerating every evaluation figure
//!   (Figures 1, 3, 4, 5/6, 7/8, 9, 10); each iteration runs the same
//!   experiment code as the `paper_experiments` binary and the
//!   integration tests.
//! * `components` — substrate microbenches: Erlang-C / G/G/m sizing, step
//!   policy lookup, DC-OPF dispatch and LMP extraction, trace generation,
//!   budgeting, and realized-cost evaluation.
//! * `ablations` — design-choice costs: integral vs. relaxed server
//!   counts, best-bound vs. depth-first search, Dantzig vs. Bland pricing.
//!
//! Run everything with `cargo bench --workspace`. The figure benches also
//! print their experiment summaries once per process so a bench run
//! doubles as a results regeneration.

/// Shared helpers for the bench targets.
pub mod helpers {
    use billcap_core::DataCenterSystem;

    /// The paper's reference background demand vector.
    pub fn background() -> Vec<f64> {
        vec![360.0, 410.0, 430.0]
    }

    /// The paper system under Policy 1.
    pub fn paper_system() -> DataCenterSystem {
        DataCenterSystem::paper_system(1)
    }
}

#[cfg(test)]
mod tests {
    use super::helpers;

    #[test]
    fn helpers_build() {
        assert_eq!(helpers::background().len(), helpers::paper_system().len());
    }
}
