//! # billcap-bench
//!
//! Benchmark targets for the `billcap` reproduction, built on the
//! in-repo [`billcap_rt::Harness`] (no external benchmarking framework;
//! the workspace builds fully offline). Each target is a
//! `harness = false` binary that registers closures and prints a
//! median/min summary table. Each one regenerates part of the paper's
//! evaluation:
//!
//! * `solver_scalability` — the Section IV-C claim: step-1 MILP solve time
//!   versus network size (paper: ≤ ~2 ms at 13 sites, 5 price levels,
//!   10⁸ requests), pure-LP and integral-server variants, and the
//!   parallel branch-and-bound speedup (1/2/4/8 workers on a 10-site ×
//!   10-level step-pricing instance, with bitwise-identical objectives
//!   asserted across thread counts).
//! * `figures` — wall-clock cost of regenerating every evaluation figure
//!   (Figures 1, 3, 4, 5/6, 7/8, 9, 10); each iteration runs the same
//!   experiment code as the `paper_experiments` binary and the
//!   integration tests.
//! * `components` — substrate microbenches: Erlang-C / G/G/m sizing, step
//!   policy lookup, DC-OPF dispatch and LMP extraction, trace generation,
//!   budgeting, and realized-cost evaluation.
//! * `ablations` — design-choice costs: integral vs. relaxed server
//!   counts, best-bound vs. depth-first search, Dantzig vs. Bland pricing.
//!
//! Run everything with `cargo bench --workspace`; pass a substring to
//! filter bench names (`cargo bench --bench solver_scalability --
//! parallel`), and set `BILLCAP_BENCH_FAST=1` for a quick smoke run.
//! The figure benches also print their experiment summaries once per
//! process so a bench run doubles as a results regeneration.

#![forbid(unsafe_code)]

/// Shared helpers for the bench targets.
pub mod helpers {
    use billcap_core::DataCenterSystem;

    /// The paper's reference background demand vector.
    pub fn background() -> Vec<f64> {
        vec![360.0, 410.0, 430.0]
    }

    /// The paper system under Policy 1.
    pub fn paper_system() -> DataCenterSystem {
        DataCenterSystem::paper_system(1)
    }
}

/// The decision-server throughput benches, shared between the
/// `serve_throughput` bench target and the `bench_trajectory` baseline
/// generator (so `BENCH_solver.json` records the cold-vs-incremental
/// ratio the serve subsystem's perf claim rests on).
pub mod serve_bench {
    use billcap_core::{BillCapper, CapperConfig, DecisionCache, DecisionEngine, DecisionKey};
    use billcap_rt::Harness;
    use std::hint::black_box;

    /// A small cycle of hour inputs: varying offered load, premium
    /// share, background demand (crossing step-price breakpoints so
    /// level structure occasionally changes), and budget tightness
    /// covering all three outcome branches.
    pub fn hour_cycle() -> Vec<(f64, f64, Vec<f64>, f64)> {
        (0..8)
            .map(|h| {
                let t = h as f64;
                let offered = 4.5e8 + 3.0e7 * t;
                let premium = 0.6 * offered;
                let background = vec![330.0 + 8.0 * t, 410.0 + 2.0 * t, 280.0 + 15.0 * t];
                let budget = match h % 3 {
                    0 => f64::INFINITY,
                    1 => 2_300.0,
                    _ => 1.0,
                };
                (offered, premium, background, budget)
            })
            .collect()
    }

    /// Registers the decide-hour strategy benches: one full decision per
    /// iteration, cycling through [`hour_cycle`].
    ///
    /// * `serve_decide/cold` — a fresh [`BillCapper`] model build per solve.
    /// * `serve_decide/incremental` — a retained [`DecisionEngine`] in exact
    ///   mode (bitwise-identical answers; value-only model mutation).
    /// * `serve_decide/warm_basis` — the engine with root-basis reuse on.
    /// * `serve_decide/cached` — repeat hours answered from a [`DecisionCache`].
    pub fn bench_decide_strategies(h: &mut Harness) {
        let system = super::helpers::paper_system();
        let hours = hour_cycle();

        let capper = BillCapper::default();
        let mut i = 0usize;
        let hours_cold = hours.clone();
        let sys_cold = system.clone();
        h.bench("serve_decide/cold", move || {
            let (offered, premium, bg, budget) = &hours_cold[i % hours_cold.len()];
            i += 1;
            let d = capper
                .decide_hour(
                    black_box(&sys_cold),
                    black_box(*offered),
                    black_box(*premium),
                    black_box(bg),
                    black_box(*budget),
                )
                // repolint-allow(unwrap): bench inputs are feasible by construction
                .expect("feasible hour");
            black_box(d.allocation.total_cost)
        });

        let mut engine = DecisionEngine::new(system.clone(), CapperConfig::default());
        let mut i = 0usize;
        let hours_inc = hours.clone();
        h.bench("serve_decide/incremental", move || {
            let (offered, premium, bg, budget) = &hours_inc[i % hours_inc.len()];
            i += 1;
            let d = engine
                .decide_hour(
                    black_box(*offered),
                    black_box(*premium),
                    black_box(bg),
                    black_box(*budget),
                )
                // repolint-allow(unwrap): bench inputs are feasible by construction
                .expect("feasible hour");
            black_box(d.allocation.total_cost)
        });

        let mut warm = DecisionEngine::new(system.clone(), CapperConfig::default());
        warm.set_reuse_basis(true);
        let mut i = 0usize;
        let hours_warm = hours.clone();
        h.bench("serve_decide/warm_basis", move || {
            let (offered, premium, bg, budget) = &hours_warm[i % hours_warm.len()];
            i += 1;
            let d = warm
                .decide_hour(
                    black_box(*offered),
                    black_box(*premium),
                    black_box(bg),
                    black_box(*budget),
                )
                // repolint-allow(unwrap): bench inputs are feasible by construction
                .expect("feasible hour");
            black_box(d.allocation.total_cost)
        });

        let mut cache = DecisionCache::new(64);
        let mut engine = DecisionEngine::new(system.clone(), CapperConfig::default());
        let mut i = 0usize;
        h.bench("serve_decide/cached", move || {
            let (offered, premium, bg, budget) = &hours[i % hours.len()];
            i += 1;
            let key = DecisionKey::new(engine.system(), false, *offered, *premium, bg, *budget);
            let d = match cache.get(&key) {
                Some(hit) => hit,
                None => {
                    let fresh = engine
                        .decide_hour(*offered, *premium, bg, *budget)
                        // repolint-allow(unwrap): bench inputs are feasible by construction
                        .expect("feasible hour");
                    cache.insert(key, fresh.clone());
                    fresh
                }
            };
            black_box(d.allocation.total_cost)
        });
    }

    /// Registers the telemetry-overhead pair: the same short in-process
    /// replay (one worker, identical request stream) with latency
    /// recording and window rotation disabled vs. enabled. The two
    /// medians bound what the hot path pays for continuous telemetry —
    /// the tentpole's "< 3% replay regression" claim is the ratio of
    /// these rows in `BENCH_solver.json`.
    pub fn bench_replay_telemetry(h: &mut Harness) {
        use billcap_serve::{build_plan, run_replay, ServeConfig};

        let plan = std::sync::Arc::new(
            build_plan(1, 42, 24, None)
                // repolint-allow(unwrap): the paper scenario always builds
                .expect("plan builds"),
        );
        for (label, telemetry) in [("off", false), ("on", true)] {
            let plan = plan.clone();
            let cfg = ServeConfig {
                workers: 1,
                telemetry,
                window_requests: 4,
                ..ServeConfig::default()
            };
            h.bench(&format!("serve_replay/telemetry_{label}"), move || {
                let outcome = run_replay(&cfg, &plan)
                    // repolint-allow(unwrap): replay of a valid plan cannot fail
                    .expect("replay runs");
                assert_eq!(outcome.decisions.len(), plan.requests.len());
                black_box(outcome.stats.decisions)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::helpers;

    #[test]
    fn helpers_build() {
        assert_eq!(helpers::background().len(), helpers::paper_system().len());
    }

    #[test]
    fn hour_cycle_exercises_all_budget_classes() {
        let hours = super::serve_bench::hour_cycle();
        assert!(hours.iter().any(|(_, _, _, b)| b.is_infinite()));
        assert!(hours.iter().any(|(_, _, _, b)| *b == 1.0));
        assert!(hours.iter().any(|(_, _, _, b)| b.is_finite() && *b > 1.0));
    }
}
