//! Decision-server throughput: per-decision strategy benches (cold
//! model build vs. incremental reuse vs. warm bases vs. cache hits) and
//! an end-to-end replay table — decisions/sec for a simulated week fired
//! through the in-process server at 1 and 4 workers, the numbers the
//! EXPERIMENTS.md "Decision server throughput" table quotes.

use billcap_bench::serve_bench;
use billcap_rt::Harness;
use billcap_serve::{build_plan, run_replay, verify_replay, ReplayPlan, ServeConfig};
use billcap_sim::Scenario;

fn fast() -> bool {
    std::env::var("BILLCAP_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// One end-to-end replay; returns decisions/sec. `label` names the row.
fn replay_row(plan: &ReplayPlan, workers: usize, cache: bool, reuse_basis: bool, check: bool) {
    let cfg = ServeConfig {
        workers,
        cache,
        reuse_basis,
        ..ServeConfig::default()
    };
    let outcome = run_replay(&cfg, plan).expect("replay runs");
    assert_eq!(outcome.decisions.len(), plan.requests.len());
    if check {
        verify_replay(plan, &outcome).expect("bitwise-identical responses");
    }
    let mode = match (cache, reuse_basis) {
        (false, false) => "incremental",
        (true, false) => "incremental+cache",
        (false, true) => "warm-basis",
        (true, true) => "warm-basis+cache",
    };
    println!(
        "  workers={workers:<2} {mode:<18} {:>9.1} decisions/sec{}",
        outcome.decisions_per_sec(),
        if check { "  (verified bitwise)" } else { "" }
    );
}

fn replay_table() {
    let hours = if fast() { 24 } else { 168 };
    eprintln!("building {hours}-hour ground-truth plan ...");
    let plan = build_plan(1, 42, hours, Some(Scenario::STRINGENT_BUDGET)).expect("plan builds");
    println!("serve_replay/{hours}h (policy 1, seed 42, stringent budget):");
    for workers in [1usize, 4] {
        // Exact modes are verified bitwise against the sequential fresh
        // decisions on every run; warm-basis trades that guarantee away.
        replay_row(&plan, workers, false, false, true);
        replay_row(&plan, workers, true, false, true);
        replay_row(&plan, workers, false, true, false);
    }
}

fn main() {
    let mut h = Harness::from_args();
    serve_bench::bench_decide_strategies(&mut h);
    serve_bench::bench_replay_telemetry(&mut h);
    h.finish();
    replay_table();
}
