//! Ablation benches for the design choices DESIGN.md calls out: what the
//! relaxed-server shortcut buys, what the power-model blind spot costs,
//! and how budgeter history length behaves. These run the experiment
//! code; the printed summaries record the measured penalties.

use billcap_bench::helpers;
use billcap_core::{CostMinimizer, ThroughputMaximizer};
use billcap_rt::Harness;
use billcap_sim::experiments::{self, DEFAULT_SEED};
use std::hint::black_box;
use std::sync::Once;

fn bench_integrality(h: &mut Harness) {
    let system = helpers::paper_system();
    let d = helpers::background();
    let relaxed = CostMinimizer::default();
    h.bench("ablation_integrality/relaxed_servers", || {
        relaxed
            .solve(&system, black_box(6e8), &d)
            .unwrap()
            .total_cost
    });
    let integral = CostMinimizer {
        integral_servers: true,
        ..Default::default()
    };
    h.bench("ablation_integrality/integral_servers", || {
        integral
            .solve(&system, black_box(6e8), &d)
            .unwrap()
            .total_cost
    });
}

fn bench_step2(h: &mut Harness) {
    let system = helpers::paper_system();
    let d = helpers::background();
    let min_cost = CostMinimizer::default()
        .solve(&system, 8e8, &d)
        .unwrap()
        .total_cost;
    let m = ThroughputMaximizer::default();
    for frac in [0.5, 0.8, 0.95] {
        h.bench(&format!("ablation_step2/budget_{frac}"), || {
            m.solve(&system, black_box(8e8), &d, black_box(frac * min_cost))
                .unwrap()
                .total_lambda
        });
    }
}

fn bench_power_model_ablation(h: &mut Harness) {
    static ONCE: Once = Once::new();
    h.bench("ablation_power_model/month_full_vs_server_only", || {
        let a = experiments::ablation_power_model(DEFAULT_SEED).expect("ablation");
        ONCE.call_once(|| println!("\n{}", a.render()));
        black_box(a.penalty())
    });
}

fn bench_budgeter_history(h: &mut Harness) {
    static ONCE: Once = Once::new();
    h.bench("ablation_budgeter/history_lengths", || {
        let a = experiments::ablation_budget_history(DEFAULT_SEED).expect("ablation");
        ONCE.call_once(|| println!("\n{}", a.render()));
        black_box(a.rows.len())
    });
}

fn bench_network_consolidation(h: &mut Harness) {
    static ONCE: Once = Once::new();
    h.bench("ablation_network/consolidation_vs_always_on", || {
        let a = experiments::ablation_network_consolidation(DEFAULT_SEED).expect("ablation");
        ONCE.call_once(|| println!("\n{}", a.render()));
        black_box(a.penalty())
    });
}

fn bench_weather(h: &mut Harness) {
    static ONCE: Once = Once::new();
    h.bench("ablation_weather/aware_vs_blind", || {
        let a = experiments::ablation_weather(DEFAULT_SEED).expect("ablation");
        ONCE.call_once(|| println!("\n{}", a.render()));
        black_box(a.saving())
    });
}

fn bench_hierarchical(h: &mut Harness) {
    static ONCE: Once = Once::new();
    h.bench("ablation_hierarchical/regions_of_three", || {
        let hc = experiments::hierarchical_comparison(1);
        ONCE.call_once(|| println!("\n{}", hc.render()));
        black_box(hc.rows.len())
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_integrality(&mut h);
    bench_step2(&mut h);
    bench_power_model_ablation(&mut h);
    bench_budgeter_history(&mut h);
    bench_network_consolidation(&mut h);
    bench_weather(&mut h);
    bench_hierarchical(&mut h);
    h.finish();
}
