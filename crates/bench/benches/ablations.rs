//! Ablation benches for the design choices DESIGN.md calls out: what the
//! relaxed-server shortcut buys, what the power-model blind spot costs,
//! and how budgeter history length behaves. These run the experiment
//! code; the printed summaries record the measured penalties.

use billcap_bench::helpers;
use billcap_core::{CostMinimizer, ThroughputMaximizer};
use billcap_sim::experiments::{self, DEFAULT_SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

fn bench_integrality(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_integrality");
    let system = helpers::paper_system();
    let d = helpers::background();
    group.bench_function("relaxed_servers", |b| {
        let m = CostMinimizer::default();
        b.iter(|| m.solve(&system, black_box(6e8), &d).unwrap().total_cost)
    });
    group.bench_function("integral_servers", |b| {
        let m = CostMinimizer {
            integral_servers: true,
            ..Default::default()
        };
        b.iter(|| m.solve(&system, black_box(6e8), &d).unwrap().total_cost)
    });
    group.finish();
}

fn bench_step2(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_step2");
    let system = helpers::paper_system();
    let d = helpers::background();
    let min_cost = CostMinimizer::default()
        .solve(&system, 8e8, &d)
        .unwrap()
        .total_cost;
    for frac in [0.5, 0.8, 0.95] {
        group.bench_function(format!("budget_{frac}"), |b| {
            let m = ThroughputMaximizer::default();
            b.iter(|| {
                m.solve(&system, black_box(8e8), &d, black_box(frac * min_cost))
                    .unwrap()
                    .total_lambda
            })
        });
    }
    group.finish();
}

fn bench_power_model_ablation(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let mut group = c.benchmark_group("ablation_power_model");
    group.sample_size(10);
    group.bench_function("month_full_vs_server_only", |b| {
        b.iter(|| {
            let a = experiments::ablation_power_model(DEFAULT_SEED).expect("ablation");
            ONCE.call_once(|| println!("\n{}", a.render()));
            black_box(a.penalty())
        })
    });
    group.finish();
}

fn bench_budgeter_history(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let mut group = c.benchmark_group("ablation_budgeter");
    group.sample_size(10);
    group.bench_function("history_lengths", |b| {
        b.iter(|| {
            let a = experiments::ablation_budget_history(DEFAULT_SEED).expect("ablation");
            ONCE.call_once(|| println!("\n{}", a.render()));
            black_box(a.rows.len())
        })
    });
    group.finish();
}

fn bench_network_consolidation(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let mut group = c.benchmark_group("ablation_network");
    group.sample_size(10);
    group.bench_function("consolidation_vs_always_on", |b| {
        b.iter(|| {
            let a = experiments::ablation_network_consolidation(DEFAULT_SEED).expect("ablation");
            ONCE.call_once(|| println!("\n{}", a.render()));
            black_box(a.penalty())
        })
    });
    group.finish();
}

fn bench_weather(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let mut group = c.benchmark_group("ablation_weather");
    group.sample_size(10);
    group.bench_function("aware_vs_blind", |b| {
        b.iter(|| {
            let a = experiments::ablation_weather(DEFAULT_SEED).expect("ablation");
            ONCE.call_once(|| println!("\n{}", a.render()));
            black_box(a.saving())
        })
    });
    group.finish();
}

fn bench_hierarchical(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let mut group = c.benchmark_group("ablation_hierarchical");
    group.sample_size(10);
    group.bench_function("regions_of_three", |b| {
        b.iter(|| {
            let h = experiments::hierarchical_comparison(1);
            ONCE.call_once(|| println!("\n{}", h.render()));
            black_box(h.rows.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_integrality,
    bench_step2,
    bench_power_model_ablation,
    bench_budgeter_history,
    bench_network_consolidation,
    bench_weather,
    bench_hierarchical
);
criterion_main!(benches);
