//! Substrate microbenches: the building blocks the hour loop is made of.

use billcap_bench::helpers;
use billcap_core::evaluate_allocation;
use billcap_market::{fivebus, pjm_five_bus, OpfSolver, StepPolicy};
use billcap_queueing::{erlang_c, GgmModel};
use billcap_workload::{Budgeter, TraceConfig, TraceGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_queueing(c: &mut Criterion) {
    let mut group = c.benchmark_group("queueing");
    let model = GgmModel::new(500.0, 1.0, 1.0);
    group.bench_function("min_servers", |b| {
        b.iter(|| model.min_servers(black_box(1.23e8), black_box(1.5 / 500.0)).unwrap())
    });
    group.bench_function("erlang_c_300k_servers", |b| {
        b.iter(|| erlang_c(black_box(300_000), black_box(295_000.0)))
    });
    group.finish();
}

fn bench_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy");
    let p = StepPolicy::paper_policy(0);
    group.bench_function("price_at", |b| {
        b.iter(|| p.price_at(black_box(472.5)))
    });
    group.bench_function("scale_increments", |b| {
        b.iter(|| p.scale_increments(black_box(3.0), black_box(200.0)))
    });
    group.finish();
}

fn bench_opf(c: &mut Criterion) {
    let mut group = c.benchmark_group("opf");
    let (grid, buses) = pjm_five_bus();
    let opf = OpfSolver::new(grid).unwrap();
    let mut loads = vec![0.0; 5];
    for b in [buses.b, buses.c, buses.d] {
        loads[b.0] = 250.0;
    }
    group.bench_function("dispatch_five_bus", |b| {
        b.iter(|| opf.dispatch(black_box(&loads)).unwrap().total_cost)
    });
    group.bench_function("lmp_five_bus", |b| {
        b.iter(|| opf.lmp(black_box(&loads), buses.b).unwrap())
    });
    group.sample_size(10);
    group.bench_function("derive_policies_sweep", |b| {
        b.iter(|| fivebus::derive_policies(black_box(900.0), black_box(25.0)).unwrap().len())
    });
    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.bench_function("generate_two_months", |b| {
        let g = TraceGenerator::new(TraceConfig::wikipedia_like(7e8, 42));
        b.iter(|| g.generate_two_months().1.total())
    });
    group.bench_function("budgeter_month", |b| {
        let history = TraceGenerator::new(TraceConfig::wikipedia_like(7e8, 42)).generate(744);
        b.iter(|| {
            let mut budgeter = Budgeter::from_history(1.5e6, &history, 720);
            let mut total = 0.0;
            for _ in 0..720 {
                let h = budgeter.hourly_budget();
                total += h;
                budgeter.record_spend(h * 0.9);
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_des(c: &mut Criterion) {
    use billcap_queueing::QueueSim;
    let mut group = c.benchmark_group("queueing_des");
    group.sample_size(20);
    group.bench_function("ggm_100k_requests", |b| {
        let sim = QueueSim::ggm(20, 18.0, 1.0, 1.0, 1.0, 7);
        b.iter(|| sim.run(100_000).mean_response)
    });
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("billing");
    let system = helpers::paper_system();
    let d = helpers::background();
    group.bench_function("evaluate_allocation", |b| {
        b.iter(|| {
            evaluate_allocation(
                black_box(&system),
                black_box(&[2e8, 1e8, 3e8]),
                black_box(&d),
            )
            .total_cost
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_queueing,
    bench_policy,
    bench_opf,
    bench_workload,
    bench_des,
    bench_evaluation
);
criterion_main!(benches);
