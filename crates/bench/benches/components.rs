//! Substrate microbenches: the building blocks the hour loop is made of.

use billcap_bench::helpers;
use billcap_core::evaluate_allocation;
use billcap_market::{fivebus, pjm_five_bus, OpfSolver, StepPolicy};
use billcap_queueing::{erlang_c, GgmModel, QueueSim};
use billcap_rt::Harness;
use billcap_workload::{Budgeter, TraceConfig, TraceGenerator};
use std::hint::black_box;

fn bench_queueing(h: &mut Harness) {
    let model = GgmModel::new(500.0, 1.0, 1.0);
    h.bench("queueing/min_servers", || {
        model
            .min_servers(black_box(1.23e8), black_box(1.5 / 500.0))
            .unwrap()
    });
    h.bench("queueing/erlang_c_300k_servers", || {
        erlang_c(black_box(300_000), black_box(295_000.0))
    });
}

fn bench_policy(h: &mut Harness) {
    let p = StepPolicy::paper_policy(0);
    h.bench("policy/price_at", || p.price_at(black_box(472.5)));
    h.bench("policy/scale_increments", || {
        p.scale_increments(black_box(3.0), black_box(200.0))
    });
}

fn bench_opf(h: &mut Harness) {
    let (grid, buses) = pjm_five_bus();
    let opf = OpfSolver::new(grid).unwrap();
    let mut loads = vec![0.0; 5];
    for b in [buses.b, buses.c, buses.d] {
        loads[b.0] = 250.0;
    }
    h.bench("opf/dispatch_five_bus", || {
        opf.dispatch(black_box(&loads)).unwrap().total_cost
    });
    h.bench("opf/lmp_five_bus", || {
        opf.lmp(black_box(&loads), buses.b).unwrap()
    });
    h.bench("opf/derive_policies_sweep", || {
        fivebus::derive_policies(black_box(900.0), black_box(25.0))
            .unwrap()
            .len()
    });
}

fn bench_workload(h: &mut Harness) {
    let g = TraceGenerator::new(TraceConfig::wikipedia_like(7e8, 42));
    h.bench("workload/generate_two_months", || {
        g.generate_two_months().1.total()
    });
    let history = TraceGenerator::new(TraceConfig::wikipedia_like(7e8, 42)).generate(744);
    h.bench("workload/budgeter_month", || {
        let mut budgeter = Budgeter::from_history(1.5e6, &history, 720);
        let mut total = 0.0;
        for _ in 0..720 {
            let hb = budgeter.hourly_budget();
            total += hb;
            budgeter.record_spend(hb * 0.9);
        }
        black_box(total)
    });
}

fn bench_des(h: &mut Harness) {
    let sim = QueueSim::ggm(20, 18.0, 1.0, 1.0, 1.0, 7);
    h.bench("queueing_des/ggm_100k_requests", || {
        sim.run(100_000).mean_response
    });
}

fn bench_evaluation(h: &mut Harness) {
    let system = helpers::paper_system();
    let d = helpers::background();
    h.bench("billing/evaluate_allocation", || {
        evaluate_allocation(
            black_box(&system),
            black_box(&[2e8, 1e8, 3e8]),
            black_box(&d),
        )
        .total_cost
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_queueing(&mut h);
    bench_policy(&mut h);
    bench_opf(&mut h);
    bench_workload(&mut h);
    bench_des(&mut h);
    bench_evaluation(&mut h);
    h.finish();
}
