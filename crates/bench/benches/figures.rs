//! One bench per evaluation figure: each iteration regenerates the
//! figure's data with the same experiment runners used by the
//! `paper_experiments` binary. The first iteration of each bench prints
//! the experiment's summary so a bench run doubles as a results run.

use billcap_rt::Harness;
use billcap_sim::experiments::{self, DEFAULT_SEED};
use std::hint::black_box;
use std::sync::Once;

fn print_once(once: &'static Once, text: String) {
    once.call_once(|| println!("\n{text}"));
}

fn main() {
    let mut h = Harness::from_args();

    static FIG1: Once = Once::new();
    h.bench("figures/fig1_pricing_policies", || {
        let f = experiments::fig1();
        print_once(&FIG1, f.render());
        black_box(f.policies.len())
    });

    static FIG3: Once = Once::new();
    h.bench("figures/fig3_hourly_cost", || {
        let f = experiments::fig3(DEFAULT_SEED).expect("fig3");
        print_once(&FIG3, f.render());
        black_box(f.capping.total_cost())
    });

    static FIG4: Once = Once::new();
    h.bench("figures/fig4_policies", || {
        let f = experiments::fig4(DEFAULT_SEED).expect("fig4");
        print_once(&FIG4, f.render());
        black_box(f.bills[3][2])
    });

    static FIG5_6: Once = Once::new();
    h.bench("figures/fig5_6_budget_2_5m", || {
        let f = experiments::fig5_6(DEFAULT_SEED).expect("fig5_6");
        print_once(&FIG5_6, f.render());
        black_box(f.report.total_cost())
    });

    static FIG7_8: Once = Once::new();
    h.bench("figures/fig7_8_budget_1_5m", || {
        let f = experiments::fig7_8(DEFAULT_SEED).expect("fig7_8");
        print_once(&FIG7_8, f.render());
        black_box(f.report.total_cost())
    });

    static FIG9: Once = Once::new();
    h.bench("figures/fig9_comparison", || {
        let f = experiments::fig9(DEFAULT_SEED).expect("fig9");
        print_once(&FIG9, f.render());
        black_box(f.rows[0].0)
    });

    static FIG10: Once = Once::new();
    h.bench("figures/fig10_budget_sweep", || {
        let f = experiments::fig10(DEFAULT_SEED).expect("fig10");
        print_once(&FIG10, f.render());
        black_box(f.rows.len())
    });

    h.finish();
}
