//! One bench per evaluation figure: each iteration regenerates the
//! figure's data with the same experiment runners used by the
//! `paper_experiments` binary. The first iteration of each bench prints
//! the experiment's summary so `cargo bench` doubles as a results run.

use billcap_sim::experiments::{self, DEFAULT_SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

fn print_once(once: &'static Once, text: String) {
    once.call_once(|| println!("\n{text}"));
}

fn bench_fig1(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig1_pricing_policies", |b| {
        b.iter(|| {
            let f = experiments::fig1();
            print_once(&ONCE, f.render());
            black_box(f.policies.len())
        })
    });
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig3_hourly_cost", |b| {
        b.iter(|| {
            let f = experiments::fig3(DEFAULT_SEED).expect("fig3");
            print_once(&ONCE, f.render());
            black_box(f.capping.total_cost())
        })
    });
    group.finish();
}

fn bench_fig4(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig4_policies", |b| {
        b.iter(|| {
            let f = experiments::fig4(DEFAULT_SEED).expect("fig4");
            print_once(&ONCE, f.render());
            black_box(f.bills[3][2])
        })
    });
    group.finish();
}

fn bench_fig5_6(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig5_6_budget_2_5m", |b| {
        b.iter(|| {
            let f = experiments::fig5_6(DEFAULT_SEED).expect("fig5_6");
            print_once(&ONCE, f.render());
            black_box(f.report.total_cost())
        })
    });
    group.finish();
}

fn bench_fig7_8(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig7_8_budget_1_5m", |b| {
        b.iter(|| {
            let f = experiments::fig7_8(DEFAULT_SEED).expect("fig7_8");
            print_once(&ONCE, f.render());
            black_box(f.report.total_cost())
        })
    });
    group.finish();
}

fn bench_fig9(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig9_comparison", |b| {
        b.iter(|| {
            let f = experiments::fig9(DEFAULT_SEED).expect("fig9");
            print_once(&ONCE, f.render());
            black_box(f.rows[0].0)
        })
    });
    group.finish();
}

fn bench_fig10(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig10_budget_sweep", |b| {
        b.iter(|| {
            let f = experiments::fig10(DEFAULT_SEED).expect("fig10");
            print_once(&ONCE, f.render());
            black_box(f.rows.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_fig3,
    bench_fig4,
    bench_fig5_6,
    bench_fig7_8,
    bench_fig9,
    bench_fig10
);
criterion_main!(benches);
