//! Solver scalability (paper Section IV-C): step-1 MILP solve time versus
//! data-center count at 5 price levels and 1e8 requests, plus the
//! parallel branch-and-bound speedup on a 10-site × 10-level instance.
//! The paper reports lp_solve finishing within ~2 ms for 13 sites; this
//! bench records the equivalent numbers for the in-tree solver.

use billcap_core::{CostMinimizer, DataCenterSystem};
use billcap_milp::{LpSolver, MipSolver, NodeSelection};
use billcap_rt::Harness;
use billcap_sim::experiments::synthetic_system;
use std::hint::black_box;

fn backgrounds(n: usize) -> Vec<f64> {
    (0..n).map(|i| 330.0 + 40.0 * (i % 3) as f64).collect()
}

fn bench_step1_by_sites(h: &mut Harness) {
    for n in [3usize, 5, 8, 13] {
        let system = synthetic_system(n);
        let d = backgrounds(n);
        let minimizer = CostMinimizer::default();
        h.bench(&format!("step1_milp_by_sites/{n}"), || {
            let alloc = minimizer
                .solve(black_box(&system), black_box(1e8), black_box(&d))
                .expect("feasible");
            black_box(alloc.total_cost)
        });
    }
}

fn bench_step1_by_load(h: &mut Harness) {
    let system = synthetic_system(3);
    let d = backgrounds(3);
    let minimizer = CostMinimizer::default();
    for lambda in [1e7, 1e8, 5e8, 1.2e9] {
        h.bench(&format!("step1_milp_by_load/{lambda:.0e}"), || {
            let alloc = minimizer
                .solve(black_box(&system), black_box(lambda), black_box(&d))
                .expect("feasible");
            black_box(alloc.total_cost)
        });
    }
}

fn bench_solver_variants(h: &mut Harness) {
    let system = synthetic_system(3);
    let d = backgrounds(3);

    let minimizer = CostMinimizer::default();
    h.bench("solver_variants/best_bound", || {
        minimizer.solve(&system, 5e8, &d).unwrap().total_cost
    });
    let dfs = CostMinimizer {
        solver: MipSolver {
            node_selection: NodeSelection::DepthFirst,
            ..Default::default()
        },
        ..Default::default()
    };
    h.bench("solver_variants/depth_first", || {
        dfs.solve(&system, 5e8, &d).unwrap().total_cost
    });
    let integral = CostMinimizer {
        integral_servers: true,
        ..Default::default()
    };
    h.bench("solver_variants/integral_servers", || {
        integral.solve(&system, 5e8, &d).unwrap().total_cost
    });
}

/// Parallel branch-and-bound on a hard 10-site × 10-level instance: the
/// headline scalability claim. Thread counts share one instance; the
/// harness reports per-count medians and this function prints the
/// resulting 8-thread speedup. The objectives are asserted
/// bitwise-identical across thread counts — the determinism contract.
fn bench_parallel_branch_and_bound(h: &mut Harness) {
    let sys = DataCenterSystem::synthetic(10, 10);
    let background: Vec<f64> = (0..sys.len()).map(|i| 5.0 + 3.0 * i as f64).collect();
    let lambda = 0.45 * sys.total_capacity();

    let minimizer = |threads: usize| CostMinimizer {
        solver: MipSolver {
            threads,
            ..Default::default()
        },
        ..Default::default()
    };
    let reference = minimizer(1).solve(&sys, lambda, &background).unwrap();

    let before = h.results().len();
    for threads in [1usize, 2, 4, 8] {
        let m = minimizer(threads);
        h.bench(&format!("parallel_bnb_10x10/threads_{threads}"), || {
            let alloc = m
                .solve(black_box(&sys), black_box(lambda), black_box(&background))
                .expect("feasible");
            assert_eq!(
                alloc.total_cost.to_bits(),
                reference.total_cost.to_bits(),
                "objective must not depend on the thread count"
            );
            black_box(alloc.total_cost)
        });
    }
    let measured = &h.results()[before..];
    if measured.len() == 4 {
        let t1 = measured[0].median_ns;
        let t8 = measured[3].median_ns;
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        println!(
            "parallel_bnb_10x10: 8-thread speedup {:.2}x (1 thread {:.1} ms, 8 threads {:.1} ms, {cores} cores available)",
            t1 / t8,
            t1 / 1e6,
            t8 / 1e6,
        );
        if cores < 8 {
            println!(
                "parallel_bnb_10x10: note: only {cores} hardware threads; speedup needs >= 8 cores"
            );
        }
    }
}

fn bench_raw_simplex(h: &mut Harness) {
    // A dense LP of the size a 13-site relaxation produces, to separate
    // simplex cost from branch-and-bound overhead.
    use billcap_milp::{ConstraintOp, Model, Sense};
    let mut m = Model::new("raw", Sense::Minimize);
    let n = 60;
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_cont(format!("x{i}"), 0.0, 100.0))
        .collect();
    for r in 0..40 {
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(j, &v)| (v, ((r * 7 + j * 3) % 11) as f64 - 3.0))
            .collect();
        m.add_constraint(format!("c{r}"), terms, ConstraintOp::Le, 50.0 + r as f64);
    }
    m.set_objective(
        vars.iter()
            .enumerate()
            .map(|(j, &v)| (v, ((j % 13) as f64) - 6.0))
            .collect(),
        0.0,
    );
    let solver = LpSolver::default();
    h.bench("raw_simplex_60x40", || {
        solver.solve(black_box(&m)).unwrap().objective
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_step1_by_sites(&mut h);
    bench_step1_by_load(&mut h);
    bench_solver_variants(&mut h);
    bench_parallel_branch_and_bound(&mut h);
    bench_raw_simplex(&mut h);
    h.finish();
}
