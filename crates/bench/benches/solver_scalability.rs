//! Solver scalability (paper Section IV-C): step-1 MILP solve time versus
//! data-center count at 5 price levels and 1e8 requests. The paper reports
//! lp_solve finishing within ~2 ms for 13 sites; this bench records the
//! equivalent numbers for the in-tree solver.

use billcap_core::CostMinimizer;
use billcap_milp::{LpSolver, MipSolver, NodeSelection};
use billcap_sim::experiments::synthetic_system;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn backgrounds(n: usize) -> Vec<f64> {
    (0..n).map(|i| 330.0 + 40.0 * (i % 3) as f64).collect()
}

fn bench_step1_by_sites(c: &mut Criterion) {
    let mut group = c.benchmark_group("step1_milp_by_sites");
    for n in [3usize, 5, 8, 13] {
        let system = synthetic_system(n);
        let d = backgrounds(n);
        let minimizer = CostMinimizer::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let alloc = minimizer
                    .solve(black_box(&system), black_box(1e8), black_box(&d))
                    .expect("feasible");
                black_box(alloc.total_cost)
            })
        });
    }
    group.finish();
}

fn bench_step1_by_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("step1_milp_by_load");
    let system = synthetic_system(3);
    let d = backgrounds(3);
    let minimizer = CostMinimizer::default();
    for lambda in [1e7, 1e8, 5e8, 1.2e9] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{lambda:.0e}")),
            &lambda,
            |b, &lambda| {
                b.iter(|| {
                    let alloc = minimizer
                        .solve(black_box(&system), black_box(lambda), black_box(&d))
                        .expect("feasible");
                    black_box(alloc.total_cost)
                })
            },
        );
    }
    group.finish();
}

fn bench_solver_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_variants");
    let system = synthetic_system(3);
    let d = backgrounds(3);

    group.bench_function("best_bound", |b| {
        let minimizer = CostMinimizer::default();
        b.iter(|| minimizer.solve(&system, 5e8, &d).unwrap().total_cost)
    });
    group.bench_function("depth_first", |b| {
        let minimizer = CostMinimizer {
            solver: MipSolver {
                node_selection: NodeSelection::DepthFirst,
                ..Default::default()
            },
            ..Default::default()
        };
        b.iter(|| minimizer.solve(&system, 5e8, &d).unwrap().total_cost)
    });
    group.bench_function("integral_servers", |b| {
        let minimizer = CostMinimizer {
            integral_servers: true,
            ..Default::default()
        };
        b.iter(|| minimizer.solve(&system, 5e8, &d).unwrap().total_cost)
    });
    group.finish();
}

fn bench_raw_simplex(c: &mut Criterion) {
    // A dense LP of the size a 13-site relaxation produces, to separate
    // simplex cost from branch-and-bound overhead.
    use billcap_milp::{ConstraintOp, Model, Sense};
    let mut m = Model::new("raw", Sense::Minimize);
    let n = 60;
    let vars: Vec<_> = (0..n).map(|i| m.add_cont(format!("x{i}"), 0.0, 100.0)).collect();
    for r in 0..40 {
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(j, &v)| (v, ((r * 7 + j * 3) % 11) as f64 - 3.0))
            .collect();
        m.add_constraint(format!("c{r}"), terms, ConstraintOp::Le, 50.0 + r as f64);
    }
    m.set_objective(
        vars.iter()
            .enumerate()
            .map(|(j, &v)| (v, ((j % 13) as f64) - 6.0))
            .collect(),
        0.0,
    );
    let solver = LpSolver::default();
    c.bench_function("raw_simplex_60x40", |b| {
        b.iter(|| solver.solve(black_box(&m)).unwrap().objective)
    });
}

criterion_group!(
    benches,
    bench_step1_by_sites,
    bench_step1_by_load,
    bench_solver_variants,
    bench_raw_simplex
);
criterion_main!(benches);
