//! Overhead of the observability layer on the solver hot path.
//!
//! The contract (DESIGN.md §Observability): with tracing disabled the
//! instrumented parallel branch-and-bound must run within 1% of its
//! un-instrumented speed — the disabled fast path is one relaxed atomic
//! load per instrumentation site. This bench measures the same
//! 10-site × 10-level instance as `solver_scalability`'s
//! `parallel_bnb_10x10` with tracing off and on, and prints the
//! enabled-mode overhead for the record.

use billcap_core::{CostMinimizer, DataCenterSystem};
use billcap_milp::MipSolver;
use billcap_rt::Harness;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args();
    let sys = DataCenterSystem::synthetic(10, 10);
    let background: Vec<f64> = (0..sys.len()).map(|i| 5.0 + 3.0 * i as f64).collect();
    let lambda = 0.45 * sys.total_capacity();
    let minimizer = |threads: usize| CostMinimizer {
        solver: MipSolver {
            threads,
            ..Default::default()
        },
        ..Default::default()
    };

    let before = h.results().len();
    for threads in [1usize, 8] {
        let m = minimizer(threads);

        billcap_obs::set_enabled(false);
        h.bench(
            &format!("trace_overhead/disabled_threads_{threads}"),
            || {
                let alloc = m
                    .solve(black_box(&sys), black_box(lambda), black_box(&background))
                    .expect("feasible");
                black_box(alloc.total_cost)
            },
        );

        billcap_obs::set_enabled(true);
        h.bench(&format!("trace_overhead/enabled_threads_{threads}"), || {
            let alloc = m
                .solve(black_box(&sys), black_box(lambda), black_box(&background))
                .expect("feasible");
            black_box(alloc.total_cost)
        });
        billcap_obs::set_enabled(false);
        // Discard the trace accumulated by the enabled runs.
        billcap_obs::reset();
    }

    let measured = &h.results()[before..];
    if measured.len() == 4 {
        for (i, threads) in [1usize, 8].iter().enumerate() {
            let off = measured[2 * i].median_ns;
            let on = measured[2 * i + 1].median_ns;
            println!(
                "trace_overhead: {threads} thread(s): disabled {:.2} ms, enabled {:.2} ms ({:+.2}% when enabled)",
                off / 1e6,
                on / 1e6,
                100.0 * (on - off) / off,
            );
        }
    }
    h.finish();
}
