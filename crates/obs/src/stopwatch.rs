//! Monotonic stopwatch: the one sanctioned wall-clock handle for crates
//! outside `billcap-rt`.
//!
//! The workspace's source gate (`repolint`) forbids `Instant::now` /
//! `SystemTime` outside `billcap-obs` and `billcap-rt`, so that timing —
//! a side effect that makes runs non-reproducible — stays confined to
//! the observability layer. Library code that needs to *measure* a phase
//! (e.g. the capper's per-step nanosecond counters) goes through
//! [`Stopwatch`] instead of reaching for `std::time` directly.

use std::time::{Duration, Instant};

/// A started monotonic clock. Construct with [`Stopwatch::start`], read
/// with [`Stopwatch::elapsed_ns`].
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Self {
        Stopwatch {
            // detlint-allow(D003): stopwatch exists to measure wall time; consumers are telemetry-only
            start: Instant::now(),
        }
    }

    /// Nanoseconds since [`Stopwatch::start`], saturating at `u64::MAX`
    /// (≈ 584 years).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed time as a [`Duration`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in (fractional) seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        assert!(sw.elapsed_secs() >= 0.0);
        assert!(sw.elapsed() >= Duration::ZERO);
    }

    #[test]
    fn copies_share_the_epoch() {
        let sw = Stopwatch::start();
        let copy = sw;
        let a = sw.elapsed_ns();
        let b = copy.elapsed_ns();
        assert!(b >= a, "copy read later must not go backwards");
    }
}
