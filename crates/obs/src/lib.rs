//! # billcap-obs
//!
//! In-repo observability for the `billcap` workspace: hierarchical
//! spans with monotonic timing, counters, gauges and fixed-bucket
//! histograms, collected per thread and merged on flush, with JSONL and
//! human-readable table exporters. Zero external dependencies, like the
//! rest of the workspace.
//!
//! ## Model
//!
//! * A [`Recorder`] owns one trace. Recording calls buffer into a
//!   thread-local collector (no cross-thread locking on the hot path);
//!   collectors merge into the recorder's aggregate when their thread
//!   exits or the recorder is flushed. This composes with
//!   `billcap-rt`'s scoped worker pools: workers join before the pool
//!   call returns, so a [`Recorder::snapshot`] taken afterwards sees
//!   every worker's data.
//! * [`Span`]s are RAII guards. Spans opened while another span is open
//!   on the same thread nest under it, producing `/`-joined paths such
//!   as `hour/step1/mip`. Numeric fields can be attached per span.
//! * Counters are monotone sums, gauges keep last/min/max, histograms
//!   use fixed upper-inclusive bucket bounds
//!   (see [`metrics::HistogramSnapshot`]).
//!
//! ## Activation
//!
//! Library code records through the *global* recorder via the
//! free functions ([`span`], [`counter`], [`gauge`], [`observe`], …).
//! These are no-ops unless tracing is enabled — either by the
//! `BILLCAP_TRACE` environment variable (any non-empty value other than
//! `0`; a path-like value additionally suggests an output file, see
//! [`env_trace_path`]) or programmatically via [`set_enabled`]. The
//! disabled fast path is a single relaxed atomic load, so instrumented
//! hot loops cost effectively nothing by default.
//!
//! ## Example
//!
//! ```
//! // Instance API: always records, independent of BILLCAP_TRACE.
//! let rec = billcap_obs::Recorder::new();
//! {
//!     let mut hour = rec.span("hour");
//!     hour.field("cost", 1234.5);
//!     {
//!         let _solve = rec.span("mip"); // nests -> path "hour/mip"
//!         rec.counter("milp.bnb.nodes", 42);
//!     }
//!     rec.observe("milp.bnb.queue_depth", 3.0);
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.counters["milp.bnb.nodes"], 42);
//! assert_eq!(snap.spans["hour/mip"].count, 1);
//! assert_eq!(snap.orphans, 0);
//!
//! // Export as JSONL (one record per line) and parse it back.
//! let jsonl = billcap_obs::export::to_jsonl(&snap);
//! let back = billcap_obs::export::parse_jsonl(&jsonl).unwrap();
//! assert_eq!(back, snap);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod json;
pub mod metrics;
mod recorder;
pub mod stopwatch;
pub mod telemetry;

pub use metrics::{GaugeStat, HistogramSnapshot, SpanEvent, SpanStats, TraceSnapshot};
pub use recorder::{Recorder, Span};
pub use stopwatch::Stopwatch;
pub use telemetry::{
    DeltaTracker, MetricsDoc, QuantileSummary, TraceSink, WindowedHistogram, METRICS_VERSION,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Default histogram bucket bounds used by [`Recorder::observe`] and
/// the global [`observe`].
pub use metrics::DEFAULT_BOUNDS;

/// Name of the environment variable that enables tracing.
pub const TRACE_ENV: &str = "BILLCAP_TRACE";

// 0 = not yet read from the environment, 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

fn init_state_from_env() -> u8 {
    // detlint-allow(D004): BILLCAP_TRACE toggles advisory tracing only
    let on = match std::env::var(TRACE_ENV) {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    };
    let state = if on { 2 } else { 1 };
    // If another thread raced us, keep its answer for consistency.
    match STATE.compare_exchange(0, state, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => state,
        Err(prev) => prev,
    }
}

/// Whether global tracing is enabled.
///
/// The first call reads [`TRACE_ENV`]; afterwards this is a single
/// relaxed atomic load, cheap enough for hot loops.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_state_from_env() == 2,
        s => s == 2,
    }
}

/// Forces global tracing on or off, overriding [`TRACE_ENV`].
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// When [`TRACE_ENV`] is set to something that looks like an output
/// path (not empty, `0`, `1`, `true`, or `on`), returns that path.
///
/// Lets `BILLCAP_TRACE=trace.jsonl billcap simulate-month ...` both
/// enable tracing and pick the output file without a `--trace` flag.
pub fn env_trace_path() -> Option<String> {
    match std::env::var(TRACE_ENV) {
        Ok(v) if !v.is_empty() && !matches!(v.as_str(), "0" | "1" | "true" | "on") => Some(v),
        _ => None,
    }
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-wide recorder behind the free functions. Created on
/// first use; exposed so callers can snapshot/reset it directly.
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::new)
}

/// Opens a span on the global recorder, or an inert span when tracing
/// is disabled (see [`enabled`]).
pub fn span(name: &str) -> Span {
    if enabled() {
        global().span(name)
    } else {
        Span::disabled()
    }
}

/// Adds to a counter on the global recorder (no-op when disabled).
pub fn counter(name: &str, delta: u64) {
    if enabled() {
        global().counter(name, delta);
    }
}

/// Sets a gauge on the global recorder (no-op when disabled).
pub fn gauge(name: &str, value: f64) {
    if enabled() {
        global().gauge(name, value);
    }
}

/// Records a histogram observation with [`DEFAULT_BOUNDS`] on the
/// global recorder (no-op when disabled).
pub fn observe(name: &str, value: f64) {
    if enabled() {
        global().observe(name, value);
    }
}

/// Records a histogram observation with explicit bucket bounds on the
/// global recorder (no-op when disabled). The bounds are fixed by the
/// first observation of each name.
pub fn observe_with(name: &str, value: f64, bounds: &[f64]) {
    if enabled() {
        global().observe_with(name, value, bounds);
    }
}

/// Flushes this thread's buffered data into the global aggregate.
pub fn flush() {
    global().flush();
}

/// Snapshot of the global recorder (flushes this thread first).
pub fn snapshot() -> TraceSnapshot {
    global().snapshot()
}

/// Clears the global recorder's aggregate and this thread's buffer.
pub fn reset() {
    global().reset();
}

#[cfg(test)]
mod tests {
    // The enabled-state and global-recorder behavior is process-global,
    // so it is exercised in the dedicated integration tests
    // (tests/global_api.rs) where each test binary is its own process.
    // Here we only check the pure helpers.

    #[test]
    fn disabled_span_is_inert() {
        let mut s = crate::Span::disabled();
        assert!(!s.is_enabled());
        s.field("x", 1.0); // must not panic
    }
}
