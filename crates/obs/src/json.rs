//! A minimal JSON value, serializer and parser.
//!
//! The observability layer exports traces as JSONL (one JSON object per
//! line) and the workspace has a zero-external-dependency policy, so
//! this module implements the small JSON subset the exporters need:
//! objects, arrays, strings, booleans, null, and numbers split into
//! integer ([`Value::Int`]) and floating ([`Value::Float`]) variants so
//! that `u64` counters and nanosecond timestamps round-trip exactly.
//!
//! Serialization of floats uses Rust's shortest-round-trip `{:?}`
//! formatting, so `parse(render(v)) == v` for every finite `f64`.
//! Non-finite floats are not representable in JSON and are rejected at
//! serialization time by debug assertion (the recorder never produces
//! them).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent part.
    Int(i64),
    /// A number carrying a fraction or exponent part.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value as an `f64`, accepting both numeric variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a `u64` (an [`Value::Int`] that is non-negative).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                debug_assert!(f.is_finite(), "non-finite float {f} is not JSON");
                // {:?} is the shortest representation that round-trips; it
                // always includes a '.' or 'e' so the parser keeps the
                // Float variant.
                let _ = write!(out, "{f:?}");
            }
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document. Trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters"));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line number in the original input, or 0 when the error
    /// is not tied to a line (single-document parses; synthetic
    /// errors). Line-oriented parsers such as
    /// [`parse_jsonl`](crate::export::parse_jsonl) fill this in so a
    /// bad line in a multi-megabyte trace is findable.
    pub line: usize,
    /// Byte offset in the input. For line-oriented parsers this is the
    /// absolute offset into the whole input, not into the line.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        Self {
            line: 0,
            offset,
            message: message.into(),
        }
    }

    /// Rebases this error into a larger input: attributes it to the
    /// 1-based `line` whose content starts at absolute byte offset
    /// `line_start`.
    pub fn on_line(self, line: usize, line_start: usize) -> Self {
        Self {
            line,
            offset: line_start + self.offset,
            message: self.message,
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "json error at line {}, byte {}: {}",
                self.line, self.offset, self.message
            )
        } else {
            write!(f, "json error at byte {}: {}", self.offset, self.message)
        }
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::at(*pos, format!("expected {:?}", c as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, format!("expected {word:?}")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' | b'-' | b'+' => *pos += 1,
            b'.' | b'e' | b'E' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "invalid number"))?;
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| JsonError::at(start, format!("invalid number {text:?}")))
    } else {
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| JsonError::at(start, format!("invalid number {text:?}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
                        // The exporters only emit BMP control escapes;
                        // surrogate pairs are out of scope.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| JsonError::at(*pos, "invalid codepoint"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid utf-8"))?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| JsonError::at(*pos, "unexpected end of input"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(1.5),
            Value::Float(-0.001),
            Value::Float(1e300),
            Value::Str("hello".into()),
            Value::Str("with \"quotes\" and \\ and \n".into()),
        ] {
            assert_eq!(Value::parse(&v.render()).unwrap(), v);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, 2.0_f64.powi(-40), 123456.789012345] {
            let v = Value::Float(f);
            match Value::parse(&v.render()).unwrap() {
                Value::Float(g) => assert_eq!(f.to_bits(), g.to_bits()),
                other => panic!("parsed {other:?}"),
            }
        }
    }

    #[test]
    fn nested_structures() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("sim.hour".into())),
            (
                "fields".into(),
                Value::Obj(vec![
                    ("hour".into(), Value::Int(12)),
                    ("cost".into(), Value::Float(1234.5)),
                ]),
            ),
            (
                "arr".into(),
                Value::Arr(vec![Value::Int(1), Value::Int(2), Value::Null]),
            ),
        ]);
        let text = v.render();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("name").unwrap().as_str(), Some("sim.hour"));
        assert_eq!(
            back.get("fields").unwrap().get("cost").unwrap().as_f64(),
            Some(1234.5)
        );
    }

    #[test]
    fn accepts_whitespace() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("{\"a\":1} trailing").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn integer_vs_float_distinction() {
        assert_eq!(Value::parse("7").unwrap(), Value::Int(7));
        assert_eq!(Value::parse("7.0").unwrap(), Value::Float(7.0));
        assert_eq!(Value::parse("7e0").unwrap(), Value::Float(7.0));
    }
}
