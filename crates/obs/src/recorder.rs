//! The [`Recorder`]: thread-local collection, RAII span guards, and
//! merge-on-flush aggregation.
//!
//! Each [`Recorder`] owns a shared aggregate behind one mutex. Threads
//! never touch that mutex on the hot path: every recording call goes to
//! a thread-local [`Collector`] keyed by recorder id, and the collector
//! merges its batch into the shared aggregate when the thread exits
//! (its `Drop`) or when the owning thread calls [`Recorder::flush`] /
//! [`Recorder::snapshot`]. This pairs naturally with `billcap-rt`'s
//! scoped worker pools: workers join before the pool call returns, so
//! their collectors have dropped — and merged — by the time the caller
//! snapshots.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::{GaugeStat, HistogramSnapshot, SpanEvent, TraceSnapshot};

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

/// State shared by a recorder and all its thread-local collectors.
pub(crate) struct SharedRec {
    id: u64,
    epoch: Instant,
    agg: Mutex<TraceSnapshot>,
    next_thread: AtomicU64,
}

thread_local! {
    static COLLECTORS: RefCell<Vec<Collector>> = const { RefCell::new(Vec::new()) };
}

/// Per-thread buffered state for one recorder.
struct Collector {
    shared: Arc<SharedRec>,
    thread: u64,
    next_seq: u64,
    /// Open span paths on this thread, innermost last.
    stack: Vec<String>,
    buf: TraceSnapshot,
}

impl Collector {
    fn new(shared: Arc<SharedRec>) -> Self {
        let thread = shared.next_thread.fetch_add(1, Ordering::Relaxed);
        Self {
            shared,
            thread,
            next_seq: 0,
            stack: Vec::new(),
            buf: TraceSnapshot::default(),
        }
    }

    /// Moves everything buffered (plus any open spans, counted as
    /// orphans when `final_drop`) into the shared aggregate.
    fn drain(&mut self, final_drop: bool) {
        if final_drop {
            self.buf.orphans += self.stack.len() as u64;
            self.stack.clear();
        }
        if self.buf.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.buf);
        let mut agg = self.shared.agg.lock().unwrap_or_else(|e| e.into_inner());
        agg.merge(&batch);
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.drain(true);
    }
}

/// Runs `f` on this thread's collector for `shared`, creating it on
/// first use.
fn with_collector<R>(shared: &Arc<SharedRec>, f: impl FnOnce(&mut Collector) -> R) -> R {
    COLLECTORS.with(|cell| {
        let mut list = cell.borrow_mut();
        if let Some(c) = list.iter_mut().find(|c| c.shared.id == shared.id) {
            return f(c);
        }
        list.push(Collector::new(Arc::clone(shared)));
        let c = list.last_mut().expect("just pushed"); // repolint-allow(unwrap): pushed on the previous line
        f(c)
    })
}

/// A trace/metric recorder.
///
/// Cheap to clone (`Arc` inside); clones share the same aggregate.
/// Recording methods buffer into a thread-local collector and are
/// lock-free with respect to other threads.
#[derive(Clone)]
pub struct Recorder {
    shared: Arc<SharedRec>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("id", &self.shared.id)
            .finish()
    }
}

impl Recorder {
    /// Creates a fresh, empty recorder. Its epoch (the zero point for
    /// span `start_ns` values) is the moment of creation.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(SharedRec {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                // detlint-allow(D003): advisory telemetry epoch; durations never feed decision output
                epoch: Instant::now(),
                agg: Mutex::new(TraceSnapshot::default()),
                next_thread: AtomicU64::new(0),
            }),
        }
    }

    /// Opens a span named `name`, nested under any span already open on
    /// this thread. The span closes (and records its duration) when the
    /// returned guard drops.
    pub fn span(&self, name: &str) -> Span {
        // detlint-allow(D003): span timing is advisory telemetry, excluded from replay digests
        let start = Instant::now();
        let (path, start_ns) = with_collector(&self.shared, |c| {
            let path = if let Some(parent) = c.stack.last() {
                format!("{parent}/{name}")
            } else {
                name.to_string()
            };
            c.stack.push(path.clone());
            (path, self.shared.epoch.elapsed().as_nanos() as u64)
        });
        Span {
            inner: Some(SpanInner {
                shared: Arc::clone(&self.shared),
                start,
                start_ns,
                path,
                fields: Vec::new(),
            }),
        }
    }

    /// Adds `delta` to the counter `name`.
    pub fn counter(&self, name: &str, delta: u64) {
        with_collector(&self.shared, |c| {
            *c.buf.counters.entry(name.to_string()).or_insert(0) += delta;
        });
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge(&self, name: &str, value: f64) {
        with_collector(&self.shared, |c| {
            c.buf
                .gauges
                .entry(name.to_string())
                .and_modify(|g| g.set(value))
                .or_insert_with(|| GaugeStat::single(value));
        });
    }

    /// Records `value` into the histogram `name` with the default
    /// bucket bounds ([`crate::DEFAULT_BOUNDS`]).
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, value, crate::DEFAULT_BOUNDS);
    }

    /// Records `value` into the histogram `name`, creating it with the
    /// given bucket upper bounds on first use. Later calls for the same
    /// name ignore `bounds` (the first creation wins), so use one bound
    /// set per name.
    pub fn observe_with(&self, name: &str, value: f64, bounds: &[f64]) {
        with_collector(&self.shared, |c| {
            c.buf
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| HistogramSnapshot::new(bounds))
                .observe(value);
        });
    }

    /// Merges this thread's buffered data into the shared aggregate
    /// without closing open spans.
    pub fn flush(&self) {
        with_collector(&self.shared, |c| c.drain(false));
    }

    /// Flushes this thread, then returns a merged copy of everything
    /// recorded so far, with events sorted deterministically.
    ///
    /// Other threads' buffered-but-unflushed data is included only once
    /// those threads have exited or flushed; with `billcap-rt` scoped
    /// pools that is guaranteed by the time the pool call returns.
    pub fn snapshot(&self) -> TraceSnapshot {
        self.flush();
        let mut snap = self
            .shared
            .agg
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        snap.sort_events();
        snap
    }

    /// Snapshots the recorder and returns only what accumulated since
    /// `tracker`'s last call, advancing the tracker's baseline.
    ///
    /// This is the scrape-friendly variant of [`snapshot`](Self::snapshot):
    /// repeated calls cost O(delta), and an idle period yields an
    /// empty delta. See
    /// [`TraceSnapshot::delta_since`](crate::TraceSnapshot::delta_since)
    /// for the per-record semantics.
    pub fn delta_since(&self, tracker: &mut crate::telemetry::DeltaTracker) -> TraceSnapshot {
        tracker.delta(&self.snapshot())
    }

    /// Clears the shared aggregate and this thread's buffer. Other
    /// threads' unflushed buffers (if any) survive a reset.
    pub fn reset(&self) {
        with_collector(&self.shared, |c| {
            c.buf = TraceSnapshot::default();
            c.buf.orphans = 0;
        });
        *self.shared.agg.lock().unwrap_or_else(|e| e.into_inner()) = TraceSnapshot::default();
    }
}

pub(crate) struct SpanInner {
    shared: Arc<SharedRec>,
    start: Instant,
    start_ns: u64,
    path: String,
    fields: Vec<(String, f64)>,
}

/// RAII guard for an open span; created by [`Recorder::span`] (or the
/// global [`crate::span`]). Records the span on drop.
///
/// A disabled span (from the global API with tracing off) is inert:
/// every method is a no-op and drop records nothing.
pub struct Span {
    pub(crate) inner: Option<SpanInner>,
}

impl Span {
    /// A span that records nothing.
    pub(crate) fn disabled() -> Self {
        Span { inner: None }
    }

    /// True when this span will record on drop.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a numeric field to the span's completion event.
    pub fn field(&mut self, name: &str, value: f64) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((name.to_string(), value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_ns = inner.start.elapsed().as_nanos() as u64;
        with_collector(&inner.shared, |c| {
            // Well-nested drops pop our own path. If an enclosing scope
            // dropped out of order (e.g. a span was moved and outlived
            // its parent), count orphans rather than corrupt the stack.
            if let Some(pos) = c.stack.iter().rposition(|p| *p == inner.path) {
                c.buf.orphans += (c.stack.len() - pos - 1) as u64;
                c.stack.truncate(pos);
            }
            // Not found: the span was already force-popped (and counted
            // as an orphan) by an enclosing out-of-order drop, or it
            // migrated threads; either way only the stats are recorded.
            c.buf
                .spans
                .entry(inner.path.clone())
                .or_default()
                .record(dur_ns);
            let seq = c.next_seq;
            c.next_seq += 1;
            c.buf.events.push(SpanEvent {
                path: inner.path,
                thread: c.thread,
                seq,
                start_ns: inner.start_ns,
                dur_ns,
                fields: inner.fields,
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Recorder::new();
        r.counter("a", 1);
        r.counter("a", 2);
        r.counter("b", 5);
        let snap = r.snapshot();
        assert_eq!(snap.counters["a"], 3);
        assert_eq!(snap.counters["b"], 5);
        assert_eq!(snap.orphans, 0);
    }

    #[test]
    fn spans_nest_into_paths() {
        let r = Recorder::new();
        {
            let _outer = r.span("hour");
            {
                let mut inner = r.span("step1");
                inner.field("nodes", 7.0);
            }
            let _inner2 = r.span("step2");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans["hour"].count, 1);
        assert_eq!(snap.spans["hour/step1"].count, 1);
        assert_eq!(snap.spans["hour/step2"].count, 1);
        assert_eq!(snap.orphans, 0);
        // Events carry fields and are sorted by start time: hour starts
        // first but *completes* last; sorting is by start_ns.
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.events[0].path, "hour");
        let step1 = snap.events.iter().find(|e| e.path == "hour/step1").unwrap();
        assert_eq!(step1.fields, vec![("nodes".to_string(), 7.0)]);
    }

    #[test]
    fn sibling_spans_reuse_parent_prefix() {
        let r = Recorder::new();
        {
            let _a = r.span("outer");
            for _ in 0..3 {
                let _b = r.span("inner");
            }
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans["outer/inner"].count, 3);
        assert!(snap.spans["outer/inner"].min_ns <= snap.spans["outer/inner"].max_ns);
        assert!(snap.spans["outer"].total_ns >= snap.spans["outer/inner"].total_ns);
    }

    #[test]
    fn out_of_order_drop_counts_orphans() {
        let r = Recorder::new();
        let outer = r.span("outer");
        let inner = r.span("inner");
        // Drop the parent first: the child is force-popped as an orphan.
        drop(outer);
        drop(inner);
        let snap = r.snapshot();
        assert_eq!(snap.orphans, 1);
        // Both spans still record durations.
        assert_eq!(snap.spans["outer"].count, 1);
    }

    #[test]
    fn gauges_and_histograms() {
        let r = Recorder::new();
        r.gauge("depth", 3.0);
        r.gauge("depth", 1.0);
        r.observe_with("lat", 4.0, &[1.0, 5.0]);
        r.observe_with("lat", 9.0, &[1.0, 5.0]);
        let snap = r.snapshot();
        assert_eq!(snap.gauges["depth"].last, 1.0);
        assert_eq!(snap.gauges["depth"].max, 3.0);
        assert_eq!(snap.histograms["lat"].counts, vec![0, 1, 1]);
    }

    #[test]
    fn reset_clears_state() {
        let r = Recorder::new();
        r.counter("a", 1);
        let _ = r.snapshot();
        r.reset();
        assert!(r.snapshot().is_empty());
        r.counter("a", 2);
        assert_eq!(r.snapshot().counters["a"], 2);
    }

    #[test]
    fn recorders_are_isolated() {
        let a = Recorder::new();
        let b = Recorder::new();
        a.counter("x", 1);
        b.counter("x", 10);
        assert_eq!(a.snapshot().counters["x"], 1);
        assert_eq!(b.snapshot().counters["x"], 10);
    }

    #[test]
    fn plain_thread_merges_on_exit() {
        let r = Recorder::new();
        let r2 = r.clone();
        std::thread::spawn(move || {
            let _s = r2.span("worker");
            r2.counter("work", 4);
        })
        .join()
        .unwrap();
        let snap = r.snapshot();
        assert_eq!(snap.counters["work"], 4);
        assert_eq!(snap.spans["worker"].count, 1);
        assert_eq!(snap.orphans, 0);
        // The worker was the first thread to touch the recorder.
        assert_eq!(snap.events[0].thread, 0);
    }
}
