//! Metric data types: counters, gauges, histograms, span statistics and
//! the [`TraceSnapshot`] aggregate they merge into.
//!
//! All types here are plain data with deterministic merge semantics —
//! the [`Recorder`](crate::Recorder) owns the concurrency story and
//! merges per-thread instances of these types under a single lock on
//! flush.

use std::collections::BTreeMap;

/// Last-write-wins gauge with running min/max and a set count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStat {
    /// Most recently set value (by merge order on flush).
    pub last: f64,
    /// Smallest value ever set.
    pub min: f64,
    /// Largest value ever set.
    pub max: f64,
    /// Number of times the gauge was set.
    pub sets: u64,
}

impl GaugeStat {
    /// A gauge observed exactly once with value `v`.
    pub fn single(v: f64) -> Self {
        Self {
            last: v,
            min: v,
            max: v,
            sets: 1,
        }
    }

    /// Records another set of the gauge.
    pub fn set(&mut self, v: f64) {
        self.last = v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sets += 1;
    }

    /// Merges another gauge's history into this one. The other gauge is
    /// treated as the later writer, so its `last` wins.
    pub fn merge(&mut self, other: &GaugeStat) {
        self.last = other.last;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sets += other.sets;
    }
}

/// Default histogram bucket upper bounds, a log-ish scale that suits
/// both counts (nodes, iterations, queue depths) and small magnitudes.
pub const DEFAULT_BOUNDS: &[f64] = &[
    0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
];

/// A fixed-bucket histogram.
///
/// `bounds` are finite, strictly ascending upper bounds. Bucket `i`
/// (for `i < bounds.len()`) covers `(bounds[i-1], bounds[i]]` — upper
/// bounds are *inclusive* — and the final bucket at index
/// `bounds.len()` is the overflow bucket `(bounds.last(), +inf)`.
///
/// ## Edge cases (all deterministic, none panic)
///
/// * A value exactly equal to `bounds[i]` lands in bucket `i`
///   (upper-inclusive).
/// * `-0.0` compares equal to `0.0`, so with a `0.0` bound it lands in
///   that bound's bucket, same as `+0.0`.
/// * `NaN` is counted in the dedicated [`invalid`](Self::invalid)
///   tally — never bucketed, never added to `sum`/`count`/`min`/`max`,
///   never silently dropped.
/// * `+inf` lands in the overflow bucket and `-inf` in the first
///   bucket; both increment `count` but are excluded from
///   `sum`/`min`/`max` so those stay finite (and the JSONL round-trip,
///   which encodes non-finite min/max as `null`, stays lossless).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite, strictly ascending bucket upper bounds.
    pub bounds: Vec<f64>,
    /// `bounds.len() + 1` counts; the last is the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all finite observed values.
    pub sum: f64,
    /// Number of bucketed observations (finite and `±inf`).
    pub count: u64,
    /// Smallest finite observed value (`f64::INFINITY` when none).
    pub min: f64,
    /// Largest finite observed value (`f64::NEG_INFINITY` when none).
    pub max: f64,
    /// `NaN` observations: counted here instead of any bucket.
    pub invalid: u64,
}

impl HistogramSnapshot {
    /// An empty histogram with the given bucket upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty, non-finite, or not strictly
    /// ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "histogram bounds must be strictly ascending");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            invalid: 0,
        }
    }

    /// Records one observation. See the type docs for the boundary,
    /// `-0.0`, `NaN` and `±inf` rules.
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            self.invalid += 1;
            return;
        }
        // partition_point over `v > *b` finds the first bound >= v, i.e.
        // the upper-inclusive bucket; values above the last bound land
        // in the overflow bucket at index bounds.len(). `+inf` exceeds
        // every finite bound (overflow) and `-inf` none (first bucket).
        let idx = self.bounds.partition_point(|b| v > *b);
        self.counts[idx] += 1;
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Mean of finite observed values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Total observations including `NaN`s routed to `invalid`.
    pub fn observations(&self) -> u64 {
        self.count + self.invalid
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) of bucketed
    /// observations, or `None` when empty.
    ///
    /// The estimate is the upper bound of the bucket containing the
    /// rank-`ceil(q * count)` observation — deterministic and
    /// conservative (never below the true quantile for in-range data).
    /// When the rank falls in the overflow bucket, returns the largest
    /// finite observed value, or the last bound if none exists.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else if self.max.is_finite() {
                    self.max
                } else {
                    // Only +inf landed in overflow; saturate at the
                    // last (finite) bound so callers always get a
                    // renderable number.
                    self.bounds[self.bounds.len() - 1]
                });
            }
        }
        None
    }

    /// Merges another histogram with identical bounds into this one.
    ///
    /// # Panics
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.invalid += other.invalid;
    }

    /// Counts/sums accumulated since `baseline` (an earlier snapshot of
    /// the same histogram), as a new histogram with the same bounds.
    ///
    /// `min`/`max` cannot be un-merged, so the delta carries the
    /// *lifetime* min/max; use a
    /// [`WindowedHistogram`](crate::telemetry::WindowedHistogram) when
    /// recent extrema matter.
    ///
    /// # Panics
    /// Panics if the bucket bounds differ.
    pub fn delta_since(&self, baseline: &HistogramSnapshot) -> HistogramSnapshot {
        assert_eq!(
            self.bounds, baseline.bounds,
            "cannot delta histograms with different bounds"
        );
        let mut d = HistogramSnapshot::new(&self.bounds);
        for (i, (c, b)) in self.counts.iter().zip(&baseline.counts).enumerate() {
            d.counts[i] = c.saturating_sub(*b);
        }
        d.sum = self.sum - baseline.sum;
        d.count = self.count.saturating_sub(baseline.count);
        d.invalid = self.invalid.saturating_sub(baseline.invalid);
        d.min = self.min;
        d.max = self.max;
        d
    }
}

/// Aggregate statistics for all completed spans sharing one path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total wall time across them, in nanoseconds.
    pub total_ns: u64,
    /// Shortest span, in nanoseconds (`u64::MAX` when `count == 0`).
    pub min_ns: u64,
    /// Longest span, in nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    /// Records one completed span of duration `dur_ns`.
    pub fn record(&mut self, dur_ns: u64) {
        self.count += 1;
        self.total_ns += dur_ns;
        self.min_ns = if self.count == 1 {
            dur_ns
        } else {
            self.min_ns.min(dur_ns)
        };
        self.max_ns = self.max_ns.max(dur_ns);
    }

    /// Merges another path's aggregate into this one.
    pub fn merge(&mut self, other: &SpanStats) {
        if other.count == 0 {
            return;
        }
        self.min_ns = if self.count == 0 {
            other.min_ns
        } else {
            self.min_ns.min(other.min_ns)
        };
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// One completed span instance, for the JSONL event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Full `/`-joined span path (e.g. `"hour/step1/mip"`).
    pub path: String,
    /// Recorder-assigned thread ordinal (0 = first thread seen).
    pub thread: u64,
    /// Per-thread sequence number, monotone in span *completion* order.
    pub seq: u64,
    /// Start time in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
    /// Numeric fields attached via [`crate::Span::field`].
    pub fields: Vec<(String, f64)>,
}

/// A merged view of everything a recorder has collected.
///
/// Produced by [`crate::Recorder::snapshot`]; all maps are `BTreeMap`s
/// so iteration (and therefore export) order is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, GaugeStat>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Aggregated span statistics by full path.
    pub spans: BTreeMap<String, SpanStats>,
    /// Individual span completion events, sorted by
    /// `(start_ns, thread, seq)`.
    pub events: Vec<SpanEvent>,
    /// Spans that were dropped while still open (collector torn down
    /// mid-span) or closed out of order. Zero in a healthy run.
    pub orphans: u64,
}

impl TraceSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.events.is_empty()
            && self.orphans == 0
    }

    /// Merges another snapshot into this one (used when per-thread
    /// collectors flush into the shared aggregate).
    pub fn merge(&mut self, other: &TraceSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges
                .entry(k.clone())
                .and_modify(|g| g.merge(v))
                .or_insert(*v);
        }
        for (k, v) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(h) => h.merge(v),
                None => {
                    self.histograms.insert(k.clone(), v.clone());
                }
            }
        }
        for (k, v) in &other.spans {
            self.spans.entry(k.clone()).or_default().merge(v);
        }
        self.events.extend(other.events.iter().cloned());
        self.orphans += other.orphans;
    }

    /// Sorts the event stream by `(start_ns, thread, seq)` so export
    /// order is deterministic regardless of merge order.
    pub fn sort_events(&mut self) {
        self.events.sort_by_key(|e| (e.start_ns, e.thread, e.seq));
    }

    /// Everything accumulated since `baseline` (an earlier snapshot of
    /// the same recorder), for bounded-cost repeated scraping.
    ///
    /// Semantics per record kind:
    /// * **counters** — arithmetic difference; entries whose delta is
    ///   zero are omitted, so an idle period yields an empty delta.
    /// * **histograms** — per-bucket count deltas via
    ///   [`HistogramSnapshot::delta_since`] (lifetime min/max); omitted
    ///   when no observation (valid or invalid) landed in the period.
    /// * **spans** — count/total deltas with lifetime min/max; omitted
    ///   when no span completed in the period.
    /// * **gauges** — last-write-wins state, passed through as-is (a
    ///   gauge has no meaningful difference).
    /// * **events** — *not* included; the per-span event stream belongs
    ///   to the export path, not to periodic scraping.
    pub fn delta_since(&self, baseline: &TraceSnapshot) -> TraceSnapshot {
        let mut d = TraceSnapshot::default();
        for (k, v) in &self.counters {
            let dv = v.saturating_sub(baseline.counters.get(k).copied().unwrap_or(0));
            if dv > 0 {
                d.counters.insert(k.clone(), dv);
            }
        }
        for (k, h) in &self.histograms {
            let dh = match baseline.histograms.get(k) {
                Some(b) if b.bounds == h.bounds => h.delta_since(b),
                _ => h.clone(),
            };
            if dh.observations() > 0 {
                d.histograms.insert(k.clone(), dh);
            }
        }
        for (k, s) in &self.spans {
            let base = baseline.spans.get(k).copied().unwrap_or_default();
            let count = s.count.saturating_sub(base.count);
            if count > 0 {
                d.spans.insert(
                    k.clone(),
                    SpanStats {
                        count,
                        total_ns: s.total_ns.saturating_sub(base.total_ns),
                        min_ns: s.min_ns,
                        max_ns: s.max_ns,
                    },
                );
            }
        }
        d.gauges = self.gauges.clone();
        d.orphans = self.orphans.saturating_sub(baseline.orphans);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries_are_upper_inclusive() {
        let mut h = HistogramSnapshot::new(&[1.0, 5.0, 10.0]);
        // Exactly on a bound -> that bucket (upper-inclusive).
        h.observe(1.0);
        h.observe(5.0);
        h.observe(10.0);
        assert_eq!(h.counts, vec![1, 1, 1, 0]);
        // Just above a bound -> next bucket.
        h.observe(1.0000001);
        assert_eq!(h.counts, vec![1, 2, 1, 0]);
        // Below the first bound -> first bucket.
        h.observe(0.0);
        h.observe(-3.0);
        assert_eq!(h.counts, vec![3, 2, 1, 0]);
        // Above the last bound -> overflow.
        h.observe(10.5);
        h.observe(1e12);
        assert_eq!(h.counts, vec![3, 2, 1, 2]);
        assert_eq!(h.count, 8);
        assert_eq!(h.min, -3.0);
        assert_eq!(h.max, 1e12);
    }

    #[test]
    fn histogram_negative_zero_lands_in_zero_bound_bucket() {
        let mut h = HistogramSnapshot::new(&[0.0, 1.0]);
        h.observe(-0.0);
        h.observe(0.0);
        // -0.0 == 0.0, so both take the upper-inclusive 0.0 bucket.
        assert_eq!(h.counts, vec![2, 0, 0]);
        assert_eq!(h.count, 2);
        assert_eq!(h.invalid, 0);
    }

    #[test]
    fn histogram_nan_counts_as_invalid_never_bucketed() {
        let mut h = HistogramSnapshot::new(&[1.0, 5.0]);
        h.observe(f64::NAN);
        h.observe(-f64::NAN);
        assert_eq!(h.invalid, 2);
        assert_eq!(h.counts, vec![0, 0, 0]);
        assert_eq!(h.count, 0);
        assert_eq!(h.sum, 0.0);
        assert_eq!(h.min, f64::INFINITY); // untouched sentinels
        assert_eq!(h.max, f64::NEG_INFINITY);
        assert_eq!(h.observations(), 2);
        // A later finite observation is unpolluted by the NaNs.
        h.observe(3.0);
        assert_eq!(h.mean(), Some(3.0));
        assert_eq!(h.min, 3.0);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn histogram_infinities_bucket_but_stay_out_of_sum_min_max() {
        let mut h = HistogramSnapshot::new(&[1.0, 5.0]);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        h.observe(2.0);
        assert_eq!(h.counts, vec![1, 1, 1]); // -inf first, 2.0 mid, +inf overflow
        assert_eq!(h.count, 3);
        assert_eq!(h.invalid, 0);
        assert_eq!(h.sum, 2.0);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 2.0);
    }

    #[test]
    fn histogram_quantile_returns_bucket_upper_bound() {
        let mut h = HistogramSnapshot::new(&[1.0, 5.0, 10.0]);
        for _ in 0..90 {
            h.observe(0.5);
        }
        for _ in 0..9 {
            h.observe(3.0);
        }
        h.observe(7.0);
        assert_eq!(h.quantile(0.5), Some(1.0));
        assert_eq!(h.quantile(0.95), Some(5.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
        assert_eq!(h.quantile(0.0), Some(1.0)); // rank clamps to 1
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(h.quantile(f64::NAN), None);
        assert_eq!(HistogramSnapshot::new(&[1.0]).quantile(0.5), None);

        // Overflow-bucket quantile reports the largest finite value...
        h.observe(250.0);
        for _ in 0..200 {
            h.observe(11.0);
        }
        assert_eq!(h.quantile(1.0), Some(250.0));
        // ...and saturates at the last bound when only +inf overflowed.
        let mut inf_only = HistogramSnapshot::new(&[1.0, 5.0]);
        inf_only.observe(f64::INFINITY);
        assert_eq!(inf_only.quantile(1.0), Some(5.0));
    }

    #[test]
    fn histogram_delta_since_subtracts_counts() {
        let mut h = HistogramSnapshot::new(&[1.0, 5.0]);
        h.observe(0.5);
        h.observe(f64::NAN);
        let base = h.clone();
        h.observe(3.0);
        h.observe(9.0);
        h.observe(f64::NAN);
        let d = h.delta_since(&base);
        assert_eq!(d.counts, vec![0, 1, 1]);
        assert_eq!(d.count, 2);
        assert_eq!(d.invalid, 1);
        assert_eq!(d.sum, 3.0 + 9.0);
        assert_eq!(d.observations(), 3);
        // Lifetime extrema, as documented.
        assert_eq!(d.min, 0.5);
        assert_eq!(d.max, 9.0);
    }

    #[test]
    fn snapshot_delta_since_omits_idle_records() {
        let mut base = TraceSnapshot::default();
        base.counters.insert("busy".into(), 2);
        base.counters.insert("idle".into(), 7);
        let mut hb = HistogramSnapshot::new(&[1.0]);
        hb.observe(0.5);
        base.histograms.insert("h_idle".into(), hb.clone());
        let mut sb = SpanStats::default();
        sb.record(10);
        base.spans.insert("s_idle".into(), sb);

        let mut cur = base.clone();
        *cur.counters.get_mut("busy").expect("busy") += 3;
        cur.counters.insert("fresh".into(), 1);
        let mut hc = hb.clone();
        hc.observe(2.0);
        cur.histograms.insert("h_busy".into(), hc);
        cur.gauges.insert("g".into(), GaugeStat::single(4.0));
        let mut sc = SpanStats::default();
        sc.record(5);
        cur.spans.insert("s_busy".into(), sc);

        let d = cur.delta_since(&base);
        assert_eq!(d.counters.len(), 2);
        assert_eq!(d.counters["busy"], 3);
        assert_eq!(d.counters["fresh"], 1);
        assert!(!d.counters.contains_key("idle"));
        assert_eq!(d.histograms.len(), 1);
        // h_busy is new to the current snapshot (no baseline entry), so
        // the delta is its full contents: the cloned 0.5 plus the 2.0.
        assert_eq!(d.histograms["h_busy"].count, 2);
        assert_eq!(d.histograms["h_busy"].counts, vec![1, 1]);
        assert_eq!(d.spans.len(), 1);
        assert_eq!(d.spans["s_busy"].count, 1);
        // Gauges pass through last-write state.
        assert_eq!(d.gauges["g"].last, 4.0);
        assert_eq!(d.orphans, 0);

        // Delta against an empty baseline is the snapshot itself minus
        // the idle-record pruning (nothing idle here to prune).
        let all = cur.delta_since(&TraceSnapshot::default());
        assert_eq!(all.counters["idle"], 7);
        assert_eq!(all.histograms["h_idle"].count, 1);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = HistogramSnapshot::new(&[1.0, 2.0]);
        let mut b = HistogramSnapshot::new(&[1.0, 2.0]);
        a.observe(0.5);
        a.observe(1.5);
        b.observe(1.5);
        b.observe(9.0);
        a.merge(&b);
        assert_eq!(a.counts, vec![1, 2, 1]);
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 0.5 + 1.5 + 1.5 + 9.0);
        assert_eq!(a.min, 0.5);
        assert_eq!(a.max, 9.0);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = HistogramSnapshot::new(&[1.0]);
        let b = HistogramSnapshot::new(&[2.0]);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        HistogramSnapshot::new(&[2.0, 1.0]);
    }

    #[test]
    fn gauge_tracks_min_max_last() {
        let mut g = GaugeStat::single(5.0);
        g.set(2.0);
        g.set(8.0);
        assert_eq!(g.last, 8.0);
        assert_eq!(g.min, 2.0);
        assert_eq!(g.max, 8.0);
        assert_eq!(g.sets, 3);

        let other = GaugeStat::single(-1.0);
        g.merge(&other);
        assert_eq!(g.last, -1.0);
        assert_eq!(g.min, -1.0);
        assert_eq!(g.max, 8.0);
        assert_eq!(g.sets, 4);
    }

    #[test]
    fn span_stats_record_and_merge() {
        let mut s = SpanStats::default();
        s.record(10);
        s.record(30);
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 40);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);

        let mut t = SpanStats::default();
        t.record(5);
        s.merge(&t);
        assert_eq!(s.count, 3);
        assert_eq!(s.min_ns, 5);

        let empty = SpanStats::default();
        s.merge(&empty);
        assert_eq!(s.count, 3);

        let mut fresh = SpanStats::default();
        fresh.merge(&s);
        assert_eq!(fresh, s);
    }

    #[test]
    fn snapshot_merge_combines_everything() {
        let mut a = TraceSnapshot::default();
        a.counters.insert("n".into(), 2);
        a.gauges.insert("g".into(), GaugeStat::single(1.0));
        let mut ha = HistogramSnapshot::new(&[1.0]);
        ha.observe(0.5);
        a.histograms.insert("h".into(), ha);
        let mut sa = SpanStats::default();
        sa.record(7);
        a.spans.insert("p".into(), sa);

        let mut b = TraceSnapshot::default();
        b.counters.insert("n".into(), 3);
        b.counters.insert("m".into(), 1);
        b.orphans = 1;
        b.events.push(SpanEvent {
            path: "p".into(),
            thread: 1,
            seq: 0,
            start_ns: 5,
            dur_ns: 2,
            fields: vec![],
        });

        a.merge(&b);
        assert_eq!(a.counters["n"], 5);
        assert_eq!(a.counters["m"], 1);
        assert_eq!(a.orphans, 1);
        assert_eq!(a.events.len(), 1);
        assert!(!a.is_empty());
        assert!(TraceSnapshot::default().is_empty());
    }

    #[test]
    fn sort_events_orders_by_start_thread_seq() {
        let mut s = TraceSnapshot::default();
        let ev = |start: u64, thread: u64, seq: u64| SpanEvent {
            path: "x".into(),
            thread,
            seq,
            start_ns: start,
            dur_ns: 0,
            fields: vec![],
        };
        s.events = vec![ev(5, 0, 1), ev(1, 1, 0), ev(5, 0, 0), ev(1, 0, 0)];
        s.sort_events();
        let order: Vec<(u64, u64, u64)> = s
            .events
            .iter()
            .map(|e| (e.start_ns, e.thread, e.seq))
            .collect();
        assert_eq!(order, vec![(1, 0, 0), (1, 1, 0), (5, 0, 0), (5, 0, 1)]);
    }
}
