//! Metric data types: counters, gauges, histograms, span statistics and
//! the [`TraceSnapshot`] aggregate they merge into.
//!
//! All types here are plain data with deterministic merge semantics —
//! the [`Recorder`](crate::Recorder) owns the concurrency story and
//! merges per-thread instances of these types under a single lock on
//! flush.

use std::collections::BTreeMap;

/// Last-write-wins gauge with running min/max and a set count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStat {
    /// Most recently set value (by merge order on flush).
    pub last: f64,
    /// Smallest value ever set.
    pub min: f64,
    /// Largest value ever set.
    pub max: f64,
    /// Number of times the gauge was set.
    pub sets: u64,
}

impl GaugeStat {
    /// A gauge observed exactly once with value `v`.
    pub fn single(v: f64) -> Self {
        Self {
            last: v,
            min: v,
            max: v,
            sets: 1,
        }
    }

    /// Records another set of the gauge.
    pub fn set(&mut self, v: f64) {
        self.last = v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sets += 1;
    }

    /// Merges another gauge's history into this one. The other gauge is
    /// treated as the later writer, so its `last` wins.
    pub fn merge(&mut self, other: &GaugeStat) {
        self.last = other.last;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sets += other.sets;
    }
}

/// Default histogram bucket upper bounds, a log-ish scale that suits
/// both counts (nodes, iterations, queue depths) and small magnitudes.
pub const DEFAULT_BOUNDS: &[f64] = &[
    0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
];

/// A fixed-bucket histogram.
///
/// `bounds` are finite, strictly ascending upper bounds. Bucket `i`
/// (for `i < bounds.len()`) covers `(bounds[i-1], bounds[i]]` — upper
/// bounds are *inclusive* — and the final bucket at index
/// `bounds.len()` is the overflow bucket `(bounds.last(), +inf)`.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite, strictly ascending bucket upper bounds.
    pub bounds: Vec<f64>,
    /// `bounds.len() + 1` counts; the last is the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
    /// Smallest observed value (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest observed value (`f64::NEG_INFINITY` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// An empty histogram with the given bucket upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty, non-finite, or not strictly
    /// ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "histogram bounds must be strictly ascending");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        // partition_point over `v > *b` finds the first bound >= v, i.e.
        // the upper-inclusive bucket; values above the last bound land
        // in the overflow bucket at index bounds.len().
        let idx = self.bounds.partition_point(|b| v > *b);
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean of observed values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Merges another histogram with identical bounds into this one.
    ///
    /// # Panics
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Aggregate statistics for all completed spans sharing one path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total wall time across them, in nanoseconds.
    pub total_ns: u64,
    /// Shortest span, in nanoseconds (`u64::MAX` when `count == 0`).
    pub min_ns: u64,
    /// Longest span, in nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    /// Records one completed span of duration `dur_ns`.
    pub fn record(&mut self, dur_ns: u64) {
        self.count += 1;
        self.total_ns += dur_ns;
        self.min_ns = if self.count == 1 {
            dur_ns
        } else {
            self.min_ns.min(dur_ns)
        };
        self.max_ns = self.max_ns.max(dur_ns);
    }

    /// Merges another path's aggregate into this one.
    pub fn merge(&mut self, other: &SpanStats) {
        if other.count == 0 {
            return;
        }
        self.min_ns = if self.count == 0 {
            other.min_ns
        } else {
            self.min_ns.min(other.min_ns)
        };
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// One completed span instance, for the JSONL event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Full `/`-joined span path (e.g. `"hour/step1/mip"`).
    pub path: String,
    /// Recorder-assigned thread ordinal (0 = first thread seen).
    pub thread: u64,
    /// Per-thread sequence number, monotone in span *completion* order.
    pub seq: u64,
    /// Start time in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
    /// Numeric fields attached via [`crate::Span::field`].
    pub fields: Vec<(String, f64)>,
}

/// A merged view of everything a recorder has collected.
///
/// Produced by [`crate::Recorder::snapshot`]; all maps are `BTreeMap`s
/// so iteration (and therefore export) order is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, GaugeStat>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Aggregated span statistics by full path.
    pub spans: BTreeMap<String, SpanStats>,
    /// Individual span completion events, sorted by
    /// `(start_ns, thread, seq)`.
    pub events: Vec<SpanEvent>,
    /// Spans that were dropped while still open (collector torn down
    /// mid-span) or closed out of order. Zero in a healthy run.
    pub orphans: u64,
}

impl TraceSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.events.is_empty()
            && self.orphans == 0
    }

    /// Merges another snapshot into this one (used when per-thread
    /// collectors flush into the shared aggregate).
    pub fn merge(&mut self, other: &TraceSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges
                .entry(k.clone())
                .and_modify(|g| g.merge(v))
                .or_insert(*v);
        }
        for (k, v) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(h) => h.merge(v),
                None => {
                    self.histograms.insert(k.clone(), v.clone());
                }
            }
        }
        for (k, v) in &other.spans {
            self.spans.entry(k.clone()).or_default().merge(v);
        }
        self.events.extend(other.events.iter().cloned());
        self.orphans += other.orphans;
    }

    /// Sorts the event stream by `(start_ns, thread, seq)` so export
    /// order is deterministic regardless of merge order.
    pub fn sort_events(&mut self) {
        self.events.sort_by_key(|e| (e.start_ns, e.thread, e.seq));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries_are_upper_inclusive() {
        let mut h = HistogramSnapshot::new(&[1.0, 5.0, 10.0]);
        // Exactly on a bound -> that bucket (upper-inclusive).
        h.observe(1.0);
        h.observe(5.0);
        h.observe(10.0);
        assert_eq!(h.counts, vec![1, 1, 1, 0]);
        // Just above a bound -> next bucket.
        h.observe(1.0000001);
        assert_eq!(h.counts, vec![1, 2, 1, 0]);
        // Below the first bound -> first bucket.
        h.observe(0.0);
        h.observe(-3.0);
        assert_eq!(h.counts, vec![3, 2, 1, 0]);
        // Above the last bound -> overflow.
        h.observe(10.5);
        h.observe(1e12);
        assert_eq!(h.counts, vec![3, 2, 1, 2]);
        assert_eq!(h.count, 8);
        assert_eq!(h.min, -3.0);
        assert_eq!(h.max, 1e12);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = HistogramSnapshot::new(&[1.0, 2.0]);
        let mut b = HistogramSnapshot::new(&[1.0, 2.0]);
        a.observe(0.5);
        a.observe(1.5);
        b.observe(1.5);
        b.observe(9.0);
        a.merge(&b);
        assert_eq!(a.counts, vec![1, 2, 1]);
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 0.5 + 1.5 + 1.5 + 9.0);
        assert_eq!(a.min, 0.5);
        assert_eq!(a.max, 9.0);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = HistogramSnapshot::new(&[1.0]);
        let b = HistogramSnapshot::new(&[2.0]);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        HistogramSnapshot::new(&[2.0, 1.0]);
    }

    #[test]
    fn gauge_tracks_min_max_last() {
        let mut g = GaugeStat::single(5.0);
        g.set(2.0);
        g.set(8.0);
        assert_eq!(g.last, 8.0);
        assert_eq!(g.min, 2.0);
        assert_eq!(g.max, 8.0);
        assert_eq!(g.sets, 3);

        let other = GaugeStat::single(-1.0);
        g.merge(&other);
        assert_eq!(g.last, -1.0);
        assert_eq!(g.min, -1.0);
        assert_eq!(g.max, 8.0);
        assert_eq!(g.sets, 4);
    }

    #[test]
    fn span_stats_record_and_merge() {
        let mut s = SpanStats::default();
        s.record(10);
        s.record(30);
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 40);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);

        let mut t = SpanStats::default();
        t.record(5);
        s.merge(&t);
        assert_eq!(s.count, 3);
        assert_eq!(s.min_ns, 5);

        let empty = SpanStats::default();
        s.merge(&empty);
        assert_eq!(s.count, 3);

        let mut fresh = SpanStats::default();
        fresh.merge(&s);
        assert_eq!(fresh, s);
    }

    #[test]
    fn snapshot_merge_combines_everything() {
        let mut a = TraceSnapshot::default();
        a.counters.insert("n".into(), 2);
        a.gauges.insert("g".into(), GaugeStat::single(1.0));
        let mut ha = HistogramSnapshot::new(&[1.0]);
        ha.observe(0.5);
        a.histograms.insert("h".into(), ha);
        let mut sa = SpanStats::default();
        sa.record(7);
        a.spans.insert("p".into(), sa);

        let mut b = TraceSnapshot::default();
        b.counters.insert("n".into(), 3);
        b.counters.insert("m".into(), 1);
        b.orphans = 1;
        b.events.push(SpanEvent {
            path: "p".into(),
            thread: 1,
            seq: 0,
            start_ns: 5,
            dur_ns: 2,
            fields: vec![],
        });

        a.merge(&b);
        assert_eq!(a.counters["n"], 5);
        assert_eq!(a.counters["m"], 1);
        assert_eq!(a.orphans, 1);
        assert_eq!(a.events.len(), 1);
        assert!(!a.is_empty());
        assert!(TraceSnapshot::default().is_empty());
    }

    #[test]
    fn sort_events_orders_by_start_thread_seq() {
        let mut s = TraceSnapshot::default();
        let ev = |start: u64, thread: u64, seq: u64| SpanEvent {
            path: "x".into(),
            thread,
            seq,
            start_ns: start,
            dur_ns: 0,
            fields: vec![],
        };
        s.events = vec![ev(5, 0, 1), ev(1, 1, 0), ev(5, 0, 0), ev(1, 0, 0)];
        s.sort_events();
        let order: Vec<(u64, u64, u64)> = s
            .events
            .iter()
            .map(|e| (e.start_ns, e.thread, e.seq))
            .collect();
        assert_eq!(order, vec![(1, 0, 0), (1, 1, 0), (5, 0, 0), (5, 0, 1)]);
    }
}
