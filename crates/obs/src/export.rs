//! Exporters: JSONL (machine-readable, line-per-record) and a
//! human-readable table, plus a JSONL parser for round-trip testing and
//! offline analysis.
//!
//! ## JSONL format
//!
//! One JSON object per line; every object carries a `"type"` field:
//!
//! | `type`       | contents                                                        |
//! |--------------|-----------------------------------------------------------------|
//! | `meta`       | `orphans`, `events`, counts of each record kind                 |
//! | `span`       | one completed span: `path`, `thread`, `seq`, `start_ns`, `dur_ns`, `fields` |
//! | `span_stats` | aggregate per path: `count`, `total_ns`, `min_ns`, `max_ns`     |
//! | `counter`    | `name`, `value`                                                 |
//! | `gauge`      | `name`, `last`, `min`, `max`, `sets`                            |
//! | `histogram`  | `name`, `bounds`, `counts`, `sum`, `count`, `min`, `max`, `invalid` |
//!
//! The `meta` line comes first, then `span` events in deterministic
//! `(start_ns, thread, seq)` order, then the aggregates in name order.

use crate::json::{JsonError, Value};
use crate::metrics::{GaugeStat, HistogramSnapshot, SpanEvent, SpanStats, TraceSnapshot};

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn u(v: u64) -> Value {
    Value::Int(v as i64)
}

/// A finite f64 as JSON; empty-histogram sentinels (`±inf`) map to null.
fn f(v: f64) -> Value {
    if v.is_finite() {
        Value::Float(v)
    } else {
        Value::Null
    }
}

/// Renders a snapshot as JSONL. See the module docs for the format.
pub fn to_jsonl(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    let meta = obj(vec![
        ("type", Value::Str("meta".into())),
        ("orphans", u(snap.orphans)),
        ("events", u(snap.events.len() as u64)),
        ("span_paths", u(snap.spans.len() as u64)),
        ("counters", u(snap.counters.len() as u64)),
        ("gauges", u(snap.gauges.len() as u64)),
        ("histograms", u(snap.histograms.len() as u64)),
    ]);
    out.push_str(&meta.render());
    out.push('\n');

    for e in &snap.events {
        let fields = Value::Obj(
            e.fields
                .iter()
                .map(|(k, v)| (k.clone(), Value::Float(*v)))
                .collect(),
        );
        let line = obj(vec![
            ("type", Value::Str("span".into())),
            ("path", Value::Str(e.path.clone())),
            ("thread", u(e.thread)),
            ("seq", u(e.seq)),
            ("start_ns", u(e.start_ns)),
            ("dur_ns", u(e.dur_ns)),
            ("fields", fields),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    for (path, s) in &snap.spans {
        let line = obj(vec![
            ("type", Value::Str("span_stats".into())),
            ("path", Value::Str(path.clone())),
            ("count", u(s.count)),
            ("total_ns", u(s.total_ns)),
            ("min_ns", u(s.min_ns)),
            ("max_ns", u(s.max_ns)),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    for (name, v) in &snap.counters {
        let line = obj(vec![
            ("type", Value::Str("counter".into())),
            ("name", Value::Str(name.clone())),
            ("value", u(*v)),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    for (name, g) in &snap.gauges {
        let line = obj(vec![
            ("type", Value::Str("gauge".into())),
            ("name", Value::Str(name.clone())),
            ("last", Value::Float(g.last)),
            ("min", Value::Float(g.min)),
            ("max", Value::Float(g.max)),
            ("sets", u(g.sets)),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    for (name, h) in &snap.histograms {
        let line = obj(vec![
            ("type", Value::Str("histogram".into())),
            ("name", Value::Str(name.clone())),
            (
                "bounds",
                Value::Arr(h.bounds.iter().map(|b| Value::Float(*b)).collect()),
            ),
            (
                "counts",
                Value::Arr(h.counts.iter().map(|c| u(*c)).collect()),
            ),
            ("sum", Value::Float(h.sum)),
            ("count", u(h.count)),
            ("min", f(h.min)),
            ("max", f(h.max)),
            ("invalid", u(h.invalid)),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    out
}

fn need_u64(v: &Value, key: &str) -> Result<u64, JsonError> {
    v.get(key).and_then(Value::as_u64).ok_or_else(|| JsonError {
        line: 0,
        offset: 0,
        message: format!("missing or non-integer field {key:?}"),
    })
}

fn need_f64(v: &Value, key: &str) -> Result<f64, JsonError> {
    v.get(key).and_then(Value::as_f64).ok_or_else(|| JsonError {
        line: 0,
        offset: 0,
        message: format!("missing or non-numeric field {key:?}"),
    })
}

fn need_str(v: &Value, key: &str) -> Result<String, JsonError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| JsonError {
            line: 0,
            offset: 0,
            message: format!("missing or non-string field {key:?}"),
        })
}

/// Parses JSONL produced by [`to_jsonl`] back into a snapshot.
///
/// Inverse of [`to_jsonl`] up to the empty-histogram min/max sentinels
/// (exported as `null`, restored as `±inf`). Unknown record types are
/// an error so format drift is caught by the round-trip test.
pub fn parse_jsonl(text: &str) -> Result<TraceSnapshot, JsonError> {
    let mut snap = TraceSnapshot::default();
    let mut line_start = 0usize;
    for (line_idx, raw_line) in text.split('\n').enumerate() {
        let result = parse_jsonl_line(&mut snap, raw_line);
        if let Err(e) = result {
            // Attribute the failure to this 1-based line and rebase the
            // byte offset from line-relative to absolute, so a bad line
            // in a multi-megabyte trace file is findable directly.
            let lead_ws = raw_line.len() - raw_line.trim_start().len();
            return Err(e.on_line(line_idx + 1, line_start + lead_ws));
        }
        line_start += raw_line.len() + 1; // +1 for the consumed '\n'
    }
    snap.sort_events();
    Ok(snap)
}

/// Parses one JSONL record into the snapshot; errors carry offsets
/// relative to the trimmed line (rebased by [`parse_jsonl`]).
fn parse_jsonl_line(snap: &mut TraceSnapshot, raw_line: &str) -> Result<(), JsonError> {
    {
        let line = raw_line.trim();
        if line.is_empty() {
            return Ok(());
        }
        let v = Value::parse(line)?;
        let kind = need_str(&v, "type")?;
        match kind.as_str() {
            "meta" => {
                snap.orphans = need_u64(&v, "orphans")?;
            }
            "span" => {
                let fields = match v.get("fields") {
                    Some(Value::Obj(pairs)) => pairs
                        .iter()
                        .map(|(k, fv)| {
                            fv.as_f64()
                                .map(|x| (k.clone(), x))
                                .ok_or_else(|| JsonError {
                                    line: 0,
                                    offset: 0,
                                    message: format!("non-numeric span field {k:?}"),
                                })
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => Vec::new(),
                };
                snap.events.push(SpanEvent {
                    path: need_str(&v, "path")?,
                    thread: need_u64(&v, "thread")?,
                    seq: need_u64(&v, "seq")?,
                    start_ns: need_u64(&v, "start_ns")?,
                    dur_ns: need_u64(&v, "dur_ns")?,
                    fields,
                });
            }
            "span_stats" => {
                snap.spans.insert(
                    need_str(&v, "path")?,
                    SpanStats {
                        count: need_u64(&v, "count")?,
                        total_ns: need_u64(&v, "total_ns")?,
                        min_ns: need_u64(&v, "min_ns")?,
                        max_ns: need_u64(&v, "max_ns")?,
                    },
                );
            }
            "counter" => {
                snap.counters
                    .insert(need_str(&v, "name")?, need_u64(&v, "value")?);
            }
            "gauge" => {
                snap.gauges.insert(
                    need_str(&v, "name")?,
                    GaugeStat {
                        last: need_f64(&v, "last")?,
                        min: need_f64(&v, "min")?,
                        max: need_f64(&v, "max")?,
                        sets: need_u64(&v, "sets")?,
                    },
                );
            }
            "histogram" => {
                let bounds = v
                    .get("bounds")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| JsonError {
                        line: 0,
                        offset: 0,
                        message: "missing histogram bounds".into(),
                    })?
                    .iter()
                    .map(|b| {
                        b.as_f64().ok_or_else(|| JsonError {
                            line: 0,
                            offset: 0,
                            message: "non-numeric histogram bound".into(),
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let counts = v
                    .get("counts")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| JsonError {
                        line: 0,
                        offset: 0,
                        message: "missing histogram counts".into(),
                    })?
                    .iter()
                    .map(|c| {
                        c.as_u64().ok_or_else(|| JsonError {
                            line: 0,
                            offset: 0,
                            message: "non-integer histogram count".into(),
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let count = need_u64(&v, "count")?;
                let min = match v.get("min") {
                    Some(Value::Null) | None => f64::INFINITY,
                    Some(other) => other.as_f64().ok_or_else(|| JsonError {
                        line: 0,
                        offset: 0,
                        message: "non-numeric histogram min".into(),
                    })?,
                };
                let max = match v.get("max") {
                    Some(Value::Null) | None => f64::NEG_INFINITY,
                    Some(other) => other.as_f64().ok_or_else(|| JsonError {
                        line: 0,
                        offset: 0,
                        message: "non-numeric histogram max".into(),
                    })?,
                };
                // `invalid` is absent in pre-telemetry traces; default 0.
                let invalid = v.get("invalid").and_then(Value::as_u64).unwrap_or(0);
                snap.histograms.insert(
                    need_str(&v, "name")?,
                    HistogramSnapshot {
                        bounds,
                        counts,
                        sum: need_f64(&v, "sum")?,
                        count,
                        min,
                        max,
                        invalid,
                    },
                );
            }
            other => {
                return Err(JsonError {
                    line: 0,
                    offset: 0,
                    message: format!("unknown record type {other:?}"),
                })
            }
        }
    }
    Ok(())
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders a snapshot as a human-readable table (spans, counters,
/// gauges, histograms), suitable for printing to stderr.
pub fn to_table(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    if !snap.spans.is_empty() {
        out.push_str("spans:\n");
        let width = snap.spans.keys().map(|p| p.len()).max().unwrap_or(4).max(4);
        out.push_str(&format!(
            "  {:width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}\n",
            "path", "count", "total", "mean", "min", "max"
        ));
        for (path, s) in &snap.spans {
            let mean = s.total_ns.checked_div(s.count).unwrap_or(0);
            out.push_str(&format!(
                "  {:width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                path,
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(mean),
                fmt_ns(s.min_ns),
                fmt_ns(s.max_ns)
            ));
        }
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &snap.counters {
            out.push_str(&format!("  {name} = {v}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, g) in &snap.gauges {
            out.push_str(&format!(
                "  {name} = {} (min {}, max {}, sets {})\n",
                g.last, g.min, g.max, g.sets
            ));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in &snap.histograms {
            let mean = h.mean().unwrap_or(0.0);
            out.push_str(&format!(
                "  {name}: count {} mean {:.2} min {} max {}\n",
                h.count,
                mean,
                if h.min.is_finite() {
                    format!("{:.2}", h.min)
                } else {
                    "-".into()
                },
                if h.max.is_finite() {
                    format!("{:.2}", h.max)
                } else {
                    "-".into()
                },
            ));
        }
    }
    if snap.orphans > 0 {
        out.push_str(&format!("orphaned spans: {}\n", snap.orphans));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample_snapshot() -> TraceSnapshot {
        let r = Recorder::new();
        {
            let mut s = r.span("hour");
            s.field("cost", 1234.5);
            s.field("nodes", 42.0);
            let _inner = r.span("step1");
        }
        r.counter("sim.hours", 1);
        r.counter("milp.bnb.nodes", 42);
        r.gauge("budget.slack", -3.25);
        r.observe_with("queue.depth", 2.0, &[1.0, 4.0, 16.0]);
        r.observe_with("queue.depth", 7.0, &[1.0, 4.0, 16.0]);
        r.snapshot()
    }

    #[test]
    fn jsonl_round_trip_is_lossless() {
        let snap = sample_snapshot();
        let text = to_jsonl(&snap);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = TraceSnapshot::default();
        let back = parse_jsonl(&to_jsonl(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn histogram_invalid_count_round_trips() {
        let r = Recorder::new();
        r.observe_with("lat", f64::NAN, &[1.0, 2.0]);
        r.observe_with("lat", 1.5, &[1.0, 2.0]);
        let snap = r.snapshot();
        assert_eq!(snap.histograms["lat"].invalid, 1);
        let back = parse_jsonl(&to_jsonl(&snap)).unwrap();
        assert_eq!(back, snap);
        // Pre-telemetry traces without the key parse with invalid = 0.
        let legacy = "{\"type\":\"histogram\",\"name\":\"h\",\"bounds\":[1.0],\
                      \"counts\":[1,0],\"sum\":0.5,\"count\":1,\"min\":0.5,\"max\":0.5}";
        let old = parse_jsonl(legacy).unwrap();
        assert_eq!(old.histograms["h"].invalid, 0);
    }

    #[test]
    fn empty_histogram_sentinels_survive() {
        let mut snap = TraceSnapshot::default();
        snap.histograms
            .insert("h".into(), HistogramSnapshot::new(&[1.0, 2.0]));
        let back = parse_jsonl(&to_jsonl(&snap)).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.histograms["h"].min, f64::INFINITY);
    }

    #[test]
    fn jsonl_leads_with_meta() {
        let text = to_jsonl(&sample_snapshot());
        let first = text.lines().next().unwrap();
        let v = Value::parse(first).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("meta"));
        assert_eq!(v.get("orphans").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn parse_rejects_unknown_type() {
        assert!(parse_jsonl("{\"type\":\"bogus\"}").is_err());
        assert!(parse_jsonl("{\"no_type\":1}").is_err());
        assert!(parse_jsonl("not json").is_err());
    }

    #[test]
    fn parse_error_reports_line_and_absolute_offset() {
        let snap = sample_snapshot();
        let mut lines: Vec<String> = to_jsonl(&snap).lines().map(String::from).collect();
        assert!(lines.len() >= 4, "need a middle line to corrupt");
        let bad_idx = lines.len() / 2;
        let expected_line = bad_idx + 1; // 1-based
        let prefix_bytes: usize = lines[..bad_idx].iter().map(|l| l.len() + 1).sum();
        lines[bad_idx] = "{\"type\":\"counter\",\"name\":}".into();
        let text = lines.join("\n");

        let err = parse_jsonl(&text).unwrap_err();
        assert_eq!(err.line, expected_line);
        assert!(
            err.offset >= prefix_bytes && err.offset < prefix_bytes + lines[bad_idx].len(),
            "offset {} outside corrupted line starting at {prefix_bytes}",
            err.offset
        );
        let msg = err.to_string();
        assert!(msg.contains(&format!("line {expected_line}")), "{msg}");

        // A semantically bad (but well-formed) record is attributed too.
        let text = "{\"type\":\"meta\",\"orphans\":0}\n{\"type\":\"bogus\"}\n";
        let err = parse_jsonl(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.offset, 28); // start of line 2
    }

    #[test]
    fn parse_skips_blank_lines() {
        let snap = sample_snapshot();
        let text = to_jsonl(&snap).replace('\n', "\n\n");
        assert_eq!(parse_jsonl(&text).unwrap(), snap);
    }

    #[test]
    fn table_mentions_all_sections() {
        let table = to_table(&sample_snapshot());
        assert!(table.contains("spans:"));
        assert!(table.contains("hour/step1"));
        assert!(table.contains("counters:"));
        assert!(table.contains("milp.bnb.nodes = 42"));
        assert!(table.contains("gauges:"));
        assert!(table.contains("histograms:"));
        assert!(!table.contains("orphaned"));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
