//! Continuous-telemetry building blocks: windowed histograms for
//! *recent* latency quantiles, delta trackers for bounded-cost repeated
//! scraping, a bounded non-blocking trace sink, and the versioned
//! metrics document scraped over the wire by `billcap-serve`'s
//! `metrics` control frame.
//!
//! Everything here is plain data plus a little synchronization; the
//! policy questions (what to record, when to rotate, where to drain)
//! belong to the server that owns these objects.

use crate::json::Value;
use crate::metrics::{HistogramSnapshot, TraceSnapshot};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Version of the JSON metrics document ([`MetricsDoc`]). Bumped on
/// any incompatible schema change; consumers must check it.
pub const METRICS_VERSION: u64 = 1;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned telemetry mutex only means a panicking thread held it;
    // the plain data inside is still usable for monitoring.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// A ring of fixed-bucket histograms rotated on a logical tick.
///
/// Observations land in the *current* window; [`rotate`](Self::rotate)
/// advances the ring and clears the window it re-enters, so
/// [`merged`](Self::merged) always covers the last `W` windows —
/// recent behavior, not lifetime averages. Rotation is driven by a
/// logical tick chosen by the owner (e.g. every N requests), never by
/// wall time, so the window contents are deterministic on a replay.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    ring: Vec<HistogramSnapshot>,
    head: usize,
    tick: u64,
}

impl WindowedHistogram {
    /// A ring of `windows` empty histograms sharing `bounds`.
    ///
    /// # Panics
    /// Panics if `windows == 0` or `bounds` are invalid (see
    /// [`HistogramSnapshot::new`]).
    pub fn new(bounds: &[f64], windows: usize) -> Self {
        assert!(windows >= 1, "need at least one window");
        Self {
            ring: vec![HistogramSnapshot::new(bounds); windows],
            head: 0,
            tick: 0,
        }
    }

    /// Records one observation into the current window.
    pub fn record(&mut self, v: f64) {
        self.ring[self.head].observe(v);
    }

    /// Advances the logical tick: the oldest window is cleared and
    /// becomes the new current window.
    pub fn rotate(&mut self) {
        self.tick += 1;
        self.head = (self.head + 1) % self.ring.len();
        let bounds = std::mem::take(&mut self.ring[self.head].bounds);
        self.ring[self.head] = HistogramSnapshot::new(&bounds);
    }

    /// Number of completed rotations.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Ring size `W`.
    pub fn window_count(&self) -> usize {
        self.ring.len()
    }

    /// The window currently receiving observations.
    pub fn current(&self) -> &HistogramSnapshot {
        &self.ring[self.head]
    }

    /// All `W` retained windows merged into one histogram.
    pub fn merged(&self) -> HistogramSnapshot {
        let mut m = HistogramSnapshot::new(&self.ring[self.head].bounds);
        for h in &self.ring {
            m.merge(h);
        }
        m
    }
}

/// Remembers the last snapshot handed out so repeated scrapes cost
/// O(delta), not O(lifetime). See [`TraceSnapshot::delta_since`] for
/// the per-record semantics.
#[derive(Debug, Default)]
pub struct DeltaTracker {
    last: TraceSnapshot,
}

impl DeltaTracker {
    /// A tracker whose baseline is the empty snapshot (the first call
    /// to [`delta`](Self::delta) returns everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns what `current` accumulated since the previous call and
    /// makes `current` the new baseline.
    pub fn delta(&mut self, current: &TraceSnapshot) -> TraceSnapshot {
        let d = current.delta_since(&self.last);
        self.last = current.clone();
        d
    }

    /// The baseline the next [`delta`](Self::delta) will subtract.
    pub fn baseline(&self) -> &TraceSnapshot {
        &self.last
    }
}

/// A bounded, non-blocking buffer of JSONL lines between a producer on
/// the serving path and a writer that drains it off to the side.
///
/// [`push_line`](Self::push_line) never blocks and never grows the
/// buffer past its capacity: when the buffer is full *or* the lock is
/// momentarily contended by the drainer, the line is counted in
/// [`dropped`](Self::dropped) and discarded (newest-dropped policy —
/// the backlog already queued is older and therefore drained first).
/// Work counters are scraped separately via `metrics` frames, so a
/// dropped sink line loses a latency sample, never an exact counter.
#[derive(Debug)]
pub struct TraceSink {
    lines: Mutex<VecDeque<String>>,
    capacity: usize,
    emitted: AtomicU64,
    dropped: AtomicU64,
}

impl TraceSink {
    /// A sink holding at most `capacity` pending lines.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "sink needs room for at least one line");
        Self {
            lines: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            emitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Enqueues one line without blocking. Returns `false` (and bumps
    /// the drop counter) when the sink is full or contended.
    pub fn push_line(&self, line: String) -> bool {
        if let Ok(mut q) = self.lines.try_lock() {
            if q.len() < self.capacity {
                q.push_back(line);
                self.emitted.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Writes and removes every pending line (newline-terminated) to
    /// `out`, returning how many were written. Blocks on the sink lock
    /// — call from the drain side, never from the hot path.
    pub fn drain_to<W: Write>(&self, out: &mut W) -> io::Result<u64> {
        let batch: Vec<String> = lock(&self.lines).drain(..).collect();
        let mut n = 0u64;
        for line in &batch {
            out.write_all(line.as_bytes())?;
            out.write_all(b"\n")?;
            n += 1;
        }
        Ok(n)
    }

    /// Lines accepted so far (drained or still pending).
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Lines discarded because the sink was full or contended.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Lines currently pending.
    pub fn pending(&self) -> usize {
        lock(&self.lines).len()
    }
}

/// Quantile summary of one latency histogram, in the unit the
/// histogram was recorded in (`billcap-serve` records microseconds).
///
/// Non-finite inputs are sanitized to `0.0` so the summary always
/// renders as plain JSON numbers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuantileSummary {
    /// Bucketed observations in the summarized histogram.
    pub count: u64,
    /// Estimated median (bucket upper bound; see
    /// [`HistogramSnapshot::quantile`]).
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Largest finite observation (`0.0` when empty).
    pub max: f64,
    /// Mean of finite observations (`0.0` when empty).
    pub mean: f64,
}

impl QuantileSummary {
    /// Summarizes a histogram (typically a
    /// [`WindowedHistogram::merged`] view).
    pub fn from_histogram(h: &HistogramSnapshot) -> Self {
        let fin = |v: f64| if v.is_finite() { v } else { 0.0 };
        Self {
            count: h.count,
            p50: fin(h.quantile(0.50).unwrap_or(0.0)),
            p95: fin(h.quantile(0.95).unwrap_or(0.0)),
            p99: fin(h.quantile(0.99).unwrap_or(0.0)),
            max: fin(h.max),
            mean: fin(h.mean().unwrap_or(0.0)),
        }
    }

    fn to_value(self) -> Value {
        Value::Obj(vec![
            ("count".into(), Value::Int(self.count as i64)),
            ("p50".into(), Value::Float(self.p50)),
            ("p95".into(), Value::Float(self.p95)),
            ("p99".into(), Value::Float(self.p99)),
            ("max".into(), Value::Float(self.max)),
            ("mean".into(), Value::Float(self.mean)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(Self {
            count: need_u64(v, "count")?,
            p50: need_f64(v, "p50")?,
            p95: need_f64(v, "p95")?,
            p99: need_f64(v, "p99")?,
            max: need_f64(v, "max")?,
            mean: need_f64(v, "mean")?,
        })
    }
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn need_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

/// The versioned metrics document returned by the server's `metrics`
/// control frame and streamed (one per window rotation) to the trace
/// sink.
///
/// `counters` hold exact *work* counts — deterministic across thread
/// counts on a fixed replay. `gauges` and `latency` carry wall-time
/// and occupancy signals, which are advisory only.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsDoc {
    /// Schema version; always [`METRICS_VERSION`] for documents
    /// produced by this crate.
    pub version: u64,
    /// Logical window-rotation tick at scrape time.
    pub tick: u64,
    /// Nanoseconds since the server's telemetry epoch (advisory).
    pub uptime_ns: u64,
    /// Exact work counters by name (e.g. `serve.requests`).
    pub counters: BTreeMap<String, u64>,
    /// Advisory gauges by name (last-set value).
    pub gauges: BTreeMap<String, f64>,
    /// Windowed latency summaries by series name (e.g. `request`,
    /// `solve`), in microseconds.
    pub latency: BTreeMap<String, QuantileSummary>,
}

impl MetricsDoc {
    /// A fresh document stamped with the current schema version.
    pub fn new(tick: u64, uptime_ns: u64) -> Self {
        Self {
            version: METRICS_VERSION,
            tick,
            uptime_ns,
            ..Self::default()
        }
    }

    /// The document as a JSON value. Non-finite gauge values are
    /// sanitized to `0.0`.
    pub fn to_value(&self) -> Value {
        let counters = Value::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::Int(*v as i64)))
                .collect(),
        );
        let gauges = Value::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| {
                    let g = if v.is_finite() { *v } else { 0.0 };
                    (k.clone(), Value::Float(g))
                })
                .collect(),
        );
        let latency = Value::Obj(
            self.latency
                .iter()
                .map(|(k, q)| (k.clone(), q.to_value()))
                .collect(),
        );
        Value::Obj(vec![
            ("version".into(), Value::Int(self.version as i64)),
            ("tick".into(), Value::Int(self.tick as i64)),
            ("uptime_ns".into(), Value::Int(self.uptime_ns as i64)),
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("latency".into(), latency),
        ])
    }

    /// Parses a document, rejecting unknown schema versions.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let version = need_u64(v, "version")?;
        if version != METRICS_VERSION {
            return Err(format!(
                "unsupported metrics version {version} (expected {METRICS_VERSION})"
            ));
        }
        let mut doc = MetricsDoc::new(need_u64(v, "tick")?, need_u64(v, "uptime_ns")?);
        match v.get("counters") {
            Some(Value::Obj(pairs)) => {
                for (k, cv) in pairs {
                    let n = cv
                        .as_u64()
                        .ok_or_else(|| format!("non-integer counter {k:?}"))?;
                    doc.counters.insert(k.clone(), n);
                }
            }
            _ => return Err("missing counters object".into()),
        }
        match v.get("gauges") {
            Some(Value::Obj(pairs)) => {
                for (k, gv) in pairs {
                    let n = gv
                        .as_f64()
                        .ok_or_else(|| format!("non-numeric gauge {k:?}"))?;
                    doc.gauges.insert(k.clone(), n);
                }
            }
            _ => return Err("missing gauges object".into()),
        }
        match v.get("latency") {
            Some(Value::Obj(pairs)) => {
                for (k, qv) in pairs {
                    doc.latency
                        .insert(k.clone(), QuantileSummary::from_value(qv)?);
                }
            }
            _ => return Err("missing latency object".into()),
        }
        Ok(doc)
    }

    /// One-line JSON rendering (suitable for JSONL streaming).
    pub fn render_json(&self) -> String {
        self.to_value().render()
    }

    /// Parses a rendering produced by [`render_json`](Self::render_json).
    pub fn parse_json(text: &str) -> Result<Self, String> {
        let v = Value::parse(text).map_err(|e| e.to_string())?;
        Self::from_value(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_histogram_forgets_old_windows() {
        let mut w = WindowedHistogram::new(&[1.0, 10.0], 3);
        w.record(0.5);
        w.rotate();
        w.record(5.0);
        w.rotate();
        w.record(50.0);
        assert_eq!(w.tick(), 2);
        assert_eq!(w.window_count(), 3);
        assert_eq!(w.merged().count, 3);
        assert_eq!(w.merged().counts, vec![1, 1, 1]);
        // One more rotation evicts the first window's 0.5.
        w.rotate();
        let m = w.merged();
        assert_eq!(m.count, 2);
        assert_eq!(m.counts, vec![0, 1, 1]);
        assert_eq!(w.current().count, 0);
        // W rotations with no recording drain everything.
        w.rotate();
        w.rotate();
        w.rotate();
        assert_eq!(w.merged().count, 0);
        assert_eq!(w.tick(), 6);
    }

    #[test]
    fn windowed_histogram_single_window_resets_on_rotate() {
        let mut w = WindowedHistogram::new(&[1.0], 1);
        w.record(0.5);
        assert_eq!(w.merged().count, 1);
        w.rotate();
        assert_eq!(w.merged().count, 0);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn windowed_histogram_rejects_zero_windows() {
        WindowedHistogram::new(&[1.0], 0);
    }

    #[test]
    fn delta_tracker_advances_baseline() {
        let mut cur = TraceSnapshot::default();
        cur.counters.insert("n".into(), 5);
        let mut t = DeltaTracker::new();
        assert_eq!(t.delta(&cur).counters["n"], 5);
        // Nothing new -> empty delta.
        assert!(t.delta(&cur).counters.is_empty());
        cur.counters.insert("n".into(), 9);
        assert_eq!(t.delta(&cur).counters["n"], 4);
        assert_eq!(t.baseline().counters["n"], 9);
    }

    #[test]
    fn trace_sink_is_bounded_and_counts_drops() {
        let sink = TraceSink::new(2);
        assert!(sink.push_line("a".into()));
        assert!(sink.push_line("b".into()));
        assert!(!sink.push_line("c".into())); // full -> dropped
        assert_eq!(sink.emitted(), 2);
        assert_eq!(sink.dropped(), 1);
        assert_eq!(sink.pending(), 2);

        let mut out = Vec::new();
        assert_eq!(sink.drain_to(&mut out).unwrap(), 2);
        assert_eq!(String::from_utf8(out).unwrap(), "a\nb\n");
        assert_eq!(sink.pending(), 0);
        // Room again after draining.
        assert!(sink.push_line("d".into()));
        assert_eq!(sink.emitted(), 3);
    }

    #[test]
    fn metrics_doc_round_trips() {
        let mut doc = MetricsDoc::new(7, 123_456);
        doc.counters.insert("serve.requests".into(), 168);
        doc.counters.insert("serve.cache.miss".into(), 168);
        doc.gauges.insert("serve.queue_depth".into(), 3.0);
        let mut h = HistogramSnapshot::new(&[100.0, 1000.0, 10_000.0]);
        h.observe(50.0);
        h.observe(700.0);
        h.observe(700.0);
        doc.latency
            .insert("solve".into(), QuantileSummary::from_histogram(&h));

        let text = doc.render_json();
        let back = MetricsDoc::parse_json(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.latency["solve"].count, 3);
        assert_eq!(back.latency["solve"].p50, 1000.0);
        assert_eq!(back.latency["solve"].max, 700.0);
    }

    #[test]
    fn metrics_doc_rejects_wrong_version_and_garbage() {
        let mut doc = MetricsDoc::new(0, 0);
        doc.version = METRICS_VERSION + 1;
        let text = doc.render_json();
        let err = MetricsDoc::parse_json(&text).unwrap_err();
        assert!(err.contains("unsupported metrics version"), "{err}");
        assert!(MetricsDoc::parse_json("not json").is_err());
        assert!(MetricsDoc::parse_json("{\"version\":1}").is_err());
    }

    #[test]
    fn quantile_summary_sanitizes_empty_histogram() {
        let q = QuantileSummary::from_histogram(&HistogramSnapshot::new(&[1.0]));
        assert_eq!(q, QuantileSummary::default());
    }
}
