//! Trace correctness under `billcap-rt`'s scoped worker pool: spans
//! stay balanced (no orphans), and counters/histograms merged from
//! worker threads equal the totals of an equivalent sequential run.

use billcap_obs::Recorder;
use billcap_rt::{par_map_threads, run_workers};
use std::sync::atomic::{AtomicUsize, Ordering};

const ITEMS: usize = 200;
const THREADS: usize = 4;

fn work(rec: &Recorder, item: usize) -> u64 {
    let mut span = rec.span("item");
    span.field("idx", item as f64);
    rec.counter("items", 1);
    rec.counter("weight", item as u64);
    rec.observe_with("size", (item % 17) as f64, &[4.0, 8.0, 16.0]);
    {
        let _inner = rec.span("inner");
        rec.counter("inner.calls", 1);
    }
    item as u64
}

#[test]
fn pool_merge_equals_sequential_totals() {
    // Sequential reference run.
    let seq = Recorder::new();
    let mut seq_sum = 0u64;
    for i in 0..ITEMS {
        seq_sum += work(&seq, i);
    }
    let seq_snap = seq.snapshot();

    // Parallel run over the same items via the rt pool.
    let par = Recorder::new();
    let results = par_map_threads(&(0..ITEMS).collect::<Vec<_>>(), THREADS, |&i| work(&par, i));
    let par_snap = par.snapshot();

    assert_eq!(results.iter().sum::<u64>(), seq_sum);

    // No orphaned spans on either side.
    assert_eq!(seq_snap.orphans, 0);
    assert_eq!(par_snap.orphans, 0);

    // Merged counters equal the sequential totals exactly.
    assert_eq!(par_snap.counters, seq_snap.counters);
    assert_eq!(par_snap.counters["items"], ITEMS as u64);
    assert_eq!(par_snap.counters["weight"], (0..ITEMS as u64).sum::<u64>());

    // Span counts and nesting paths match (durations differ, counts
    // must not).
    assert_eq!(par_snap.spans.len(), seq_snap.spans.len());
    for (path, s) in &seq_snap.spans {
        assert_eq!(
            par_snap.spans[path].count, s.count,
            "span count mismatch at {path}"
        );
    }
    assert_eq!(par_snap.spans["item"].count, ITEMS as u64);
    assert_eq!(par_snap.spans["item/inner"].count, ITEMS as u64);

    // Histogram bucket counts merge exactly.
    assert_eq!(
        par_snap.histograms["size"].counts,
        seq_snap.histograms["size"].counts
    );
    assert_eq!(par_snap.histograms["size"].count, ITEMS as u64);

    // One event per completed span.
    assert_eq!(par_snap.events.len(), 2 * ITEMS);
}

#[test]
fn raw_workers_merge_on_join() {
    let rec = Recorder::new();
    let cursor = AtomicUsize::new(0);
    run_workers(THREADS, |_worker| loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= ITEMS {
            break;
        }
        let _span = rec.span("task");
        rec.counter("done", 1);
    });
    // run_workers joins before returning, so every worker collector has
    // dropped and merged: a snapshot here must be complete.
    let snap = rec.snapshot();
    assert_eq!(snap.counters["done"], ITEMS as u64);
    assert_eq!(snap.spans["task"].count, ITEMS as u64);
    assert_eq!(snap.orphans, 0);
}

#[test]
fn nested_pool_spans_stay_per_thread() {
    // A span opened on the caller thread must NOT become the parent of
    // worker-thread spans (nesting is per thread by design), and the
    // worker spans must not orphan anything.
    let rec = Recorder::new();
    {
        let _outer = rec.span("caller");
        par_map_threads(&[1, 2, 3, 4, 5], THREADS, |&i| {
            let _s = rec.span("worker");
            i * 2
        });
    }
    let snap = rec.snapshot();
    assert_eq!(snap.spans["caller"].count, 1);
    assert_eq!(snap.spans["worker"].count, 5);
    assert!(!snap.spans.contains_key("caller/worker"));
    assert_eq!(snap.orphans, 0);
}

#[test]
fn thread_ordinals_are_distinct_per_event() {
    let rec = Recorder::new();
    run_workers(THREADS, |_w| {
        let _s = rec.span("t");
    });
    let snap = rec.snapshot();
    assert_eq!(snap.events.len(), THREADS);
    let mut threads: Vec<u64> = snap.events.iter().map(|e| e.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    assert_eq!(threads.len(), THREADS, "each worker gets its own ordinal");
}
