//! Trace correctness under `billcap-rt`'s scoped worker pool: spans
//! stay balanced (no orphans), and counters/histograms merged from
//! worker threads equal the totals of an equivalent sequential run.

use billcap_obs::Recorder;
use billcap_rt::{par_map_threads, run_workers};
use std::sync::atomic::{AtomicUsize, Ordering};

const ITEMS: usize = 200;
const THREADS: usize = 4;

fn work(rec: &Recorder, item: usize) -> u64 {
    let mut span = rec.span("item");
    span.field("idx", item as f64);
    rec.counter("items", 1);
    rec.counter("weight", item as u64);
    rec.observe_with("size", (item % 17) as f64, &[4.0, 8.0, 16.0]);
    {
        let _inner = rec.span("inner");
        rec.counter("inner.calls", 1);
    }
    item as u64
}

#[test]
fn pool_merge_equals_sequential_totals() {
    // Sequential reference run.
    let seq = Recorder::new();
    let mut seq_sum = 0u64;
    for i in 0..ITEMS {
        seq_sum += work(&seq, i);
    }
    let seq_snap = seq.snapshot();

    // Parallel run over the same items via the rt pool.
    let par = Recorder::new();
    let results = par_map_threads(&(0..ITEMS).collect::<Vec<_>>(), THREADS, |&i| work(&par, i));
    let par_snap = par.snapshot();

    assert_eq!(results.iter().sum::<u64>(), seq_sum);

    // No orphaned spans on either side.
    assert_eq!(seq_snap.orphans, 0);
    assert_eq!(par_snap.orphans, 0);

    // Merged counters equal the sequential totals exactly.
    assert_eq!(par_snap.counters, seq_snap.counters);
    assert_eq!(par_snap.counters["items"], ITEMS as u64);
    assert_eq!(par_snap.counters["weight"], (0..ITEMS as u64).sum::<u64>());

    // Span counts and nesting paths match (durations differ, counts
    // must not).
    assert_eq!(par_snap.spans.len(), seq_snap.spans.len());
    for (path, s) in &seq_snap.spans {
        assert_eq!(
            par_snap.spans[path].count, s.count,
            "span count mismatch at {path}"
        );
    }
    assert_eq!(par_snap.spans["item"].count, ITEMS as u64);
    assert_eq!(par_snap.spans["item/inner"].count, ITEMS as u64);

    // Histogram bucket counts merge exactly.
    assert_eq!(
        par_snap.histograms["size"].counts,
        seq_snap.histograms["size"].counts
    );
    assert_eq!(par_snap.histograms["size"].count, ITEMS as u64);

    // One event per completed span.
    assert_eq!(par_snap.events.len(), 2 * ITEMS);
}

#[test]
fn raw_workers_merge_on_join() {
    let rec = Recorder::new();
    let cursor = AtomicUsize::new(0);
    run_workers(THREADS, |_worker| loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= ITEMS {
            break;
        }
        let _span = rec.span("task");
        rec.counter("done", 1);
    });
    // run_workers joins before returning, so every worker collector has
    // dropped and merged: a snapshot here must be complete.
    let snap = rec.snapshot();
    assert_eq!(snap.counters["done"], ITEMS as u64);
    assert_eq!(snap.spans["task"].count, ITEMS as u64);
    assert_eq!(snap.orphans, 0);
}

#[test]
fn nested_pool_spans_stay_per_thread() {
    // A span opened on the caller thread must NOT become the parent of
    // worker-thread spans (nesting is per thread by design), and the
    // worker spans must not orphan anything.
    let rec = Recorder::new();
    {
        let _outer = rec.span("caller");
        par_map_threads(&[1, 2, 3, 4, 5], THREADS, |&i| {
            let _s = rec.span("worker");
            i * 2
        });
    }
    let snap = rec.snapshot();
    assert_eq!(snap.spans["caller"].count, 1);
    assert_eq!(snap.spans["worker"].count, 5);
    assert!(!snap.spans.contains_key("caller/worker"));
    assert_eq!(snap.orphans, 0);
}

#[test]
fn bucket_boundary_values_merge_exactly_under_pool() {
    // Values landing exactly on bucket upper bounds must stay in the
    // upper-inclusive bucket no matter which worker thread observed
    // them or in which order per-thread histograms merged.
    const BOUNDS: &[f64] = &[1.0, 5.0, 10.0];
    const N: usize = 198; // multiple of 3 so the edges split evenly
    let edges = [1.0, 5.0, 10.0];
    let items: Vec<usize> = (0..N).collect();

    let rec = Recorder::new();
    par_map_threads(&items, 16, |&i| {
        rec.observe_with("edge", edges[i % edges.len()], BOUNDS);
        rec.observe_with("edge", 10.5, BOUNDS); // overflow bucket
    });
    let snap = rec.snapshot();
    let h = &snap.histograms["edge"];
    assert_eq!(h.count, 2 * N as u64);
    // Every edge value sits in its own (upper-inclusive) bucket, the
    // 10.5 observations all land in overflow.
    let per_edge = (N / edges.len()) as u64;
    assert_eq!(h.counts, vec![per_edge, per_edge, per_edge, N as u64]);
    assert_eq!(h.min, 1.0);
    assert_eq!(h.max, 10.5);
}

#[test]
fn flush_totals_are_thread_count_invariant() {
    // Oversubscribe the pool well past typical core counts: merged
    // counter totals, gauge min/max/sets, and histogram bucket counts
    // must be identical across 1, 4, and 32 threads.
    let run = |threads: usize| {
        let rec = Recorder::new();
        let items: Vec<usize> = (0..ITEMS).collect();
        par_map_threads(&items, threads, |&i| {
            rec.counter("ops", 1);
            rec.counter("weight", i as u64);
            rec.gauge("level", i as f64);
            rec.observe_with("lat", (i % 10) as f64, &[2.0, 5.0]);
            let _s = rec.span("unit");
        });
        rec.snapshot()
    };

    let one = run(1);
    let four = run(4);
    let many = run(32);

    for snap in [&four, &many] {
        assert_eq!(snap.counters, one.counters);
        assert_eq!(snap.histograms["lat"].counts, one.histograms["lat"].counts);
        assert_eq!(snap.histograms["lat"].sum, one.histograms["lat"].sum);
        assert_eq!(snap.spans["unit"].count, ITEMS as u64);
        assert_eq!(snap.orphans, 0);

        // Gauge `last` depends on merge order across threads, so only
        // the order-independent parts are invariant.
        let (g, g1) = (&snap.gauges["level"], &one.gauges["level"]);
        assert_eq!(g.min, g1.min);
        assert_eq!(g.max, g1.max);
        assert_eq!(g.sets, g1.sets);
    }
    assert_eq!(one.counters["ops"], ITEMS as u64);
    assert_eq!(one.gauges["level"].min, 0.0);
    assert_eq!(one.gauges["level"].max, (ITEMS - 1) as f64);
}

#[test]
fn thread_ordinals_are_distinct_per_event() {
    let rec = Recorder::new();
    run_workers(THREADS, |_w| {
        let _s = rec.span("t");
    });
    let snap = rec.snapshot();
    assert_eq!(snap.events.len(), THREADS);
    let mut threads: Vec<u64> = snap.events.iter().map(|e| e.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    assert_eq!(threads.len(), THREADS, "each worker gets its own ordinal");
}
