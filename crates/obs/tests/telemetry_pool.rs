//! Telemetry primitives under the `billcap-rt` pool: work counters must
//! be thread-count invariant, delta scrapes must partition the lifetime
//! totals, and a `WindowedHistogram` behind a mutex must stay coherent
//! while workers record against concurrent rotate/merge — the exact
//! shape the serve daemon uses.
//!
//! Instance [`Recorder`]s (not the process-global one) keep these tests
//! independent of the global tracing switch and of each other.

use billcap_obs::{DeltaTracker, Recorder, WindowedHistogram};
use billcap_rt::{par_map_threads, run_workers, Rng, Xoshiro256pp};
use std::sync::{Mutex, PoisonError};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs the same counted workload at several thread counts; the merged
/// work counters and histogram bucket counts must be identical because
/// they are functions of the item set, never of the schedule.
#[test]
fn work_counters_are_thread_count_invariant() {
    let items: Vec<u64> = (0..512).collect();
    let mut baseline: Option<(u64, Vec<u64>)> = None;
    for threads in [1usize, 4, 32] {
        let r = Recorder::new();
        let out = par_map_threads(&items, threads, |&x| {
            r.counter("pool.work", 1);
            r.observe_with("pool.val", x as f64, &[127.0, 255.0, 383.0]);
            x + 1
        });
        assert_eq!(out.len(), items.len());
        let snap = r.snapshot();
        let shape = (
            snap.counters["pool.work"],
            snap.histograms["pool.val"].counts.clone(),
        );
        assert_eq!(shape.0, 512, "threads={threads}");
        assert_eq!(shape.1, vec![128, 128, 128, 128], "threads={threads}");
        match &baseline {
            None => baseline = Some(shape),
            Some(b) => assert_eq!(*b, shape, "threads={threads} drifted"),
        }
    }
}

/// Scraping between pool batches partitions the lifetime totals: the
/// deltas sum exactly to what was recorded, and an idle scrape is
/// empty.
#[test]
fn delta_scrapes_partition_pool_work() {
    let r = Recorder::new();
    let mut tracker = DeltaTracker::new();
    let items: Vec<u64> = (0..400).collect();

    let _ = par_map_threads(&items[..150], 4, |&x| {
        r.counter("batch.items", 1);
        x
    });
    let d1 = r.delta_since(&mut tracker);
    assert_eq!(d1.counters["batch.items"], 150);

    let _ = par_map_threads(&items[150..], 4, |&x| {
        r.counter("batch.items", 1);
        x
    });
    let d2 = r.delta_since(&mut tracker);
    assert_eq!(d2.counters["batch.items"], 250);

    // Nothing happened since: the delta is empty, the baseline intact.
    let d3 = r.delta_since(&mut tracker);
    assert!(d3.counters.is_empty());
    assert_eq!(r.snapshot().counters["batch.items"], 400);
}

/// Workers hammer a shared `WindowedHistogram` while another worker
/// rotates and merges concurrently. Every merge observed mid-flight
/// must be internally coherent (count equals the bucket sum), and the
/// rotation tick must equal the number of rotations performed.
#[test]
fn windowed_histogram_stays_coherent_under_concurrent_rotation() {
    const ROTATIONS: u64 = 50;
    const RECORDERS: usize = 4;
    const PER_WORKER: usize = 2_000;
    let wh = Mutex::new(WindowedHistogram::new(&[10.0, 100.0, 1_000.0], 4));

    run_workers(RECORDERS + 1, |w| {
        if w == 0 {
            for _ in 0..ROTATIONS {
                let mut g = lock(&wh);
                let m = g.merged();
                assert_eq!(
                    m.count,
                    m.counts.iter().sum::<u64>(),
                    "merge tore mid-rotation"
                );
                g.rotate();
                drop(g);
                std::thread::yield_now();
            }
        } else {
            let mut rng = Xoshiro256pp::seed_from_u64(w as u64);
            for _ in 0..PER_WORKER {
                let v = (rng.next_u64() % 2_000) as f64;
                lock(&wh).record(v);
            }
        }
    });

    let g = lock(&wh);
    assert_eq!(g.tick(), ROTATIONS);
    let m = g.merged();
    assert_eq!(m.count, m.counts.iter().sum::<u64>());
    // Rotation only forgets; it never invents observations.
    assert!(m.count as usize <= RECORDERS * PER_WORKER);
}

/// Seeded fuzz loop interleaving record / rotate / scrape on one
/// driver: whatever the interleaving, the scraped counter deltas sum to
/// exactly what was recorded and every merged view stays coherent.
#[test]
fn fuzzed_interleaving_of_scrape_rotate_record_conserves_counts() {
    let r = Recorder::new();
    let mut tracker = DeltaTracker::new();
    let mut wh = WindowedHistogram::new(&[1.0, 10.0], 3);
    let mut rng = Xoshiro256pp::seed_from_u64(0x7e1e);

    let mut recorded = 0u64;
    let mut scraped = 0u64;
    for _ in 0..5_000 {
        match rng.random_usize_in(0, 3) {
            0 => {
                r.counter("fuzz.n", 1);
                recorded += 1;
            }
            1 => {
                wh.record((rng.next_u64() % 100) as f64);
                let m = wh.merged();
                assert_eq!(m.count, m.counts.iter().sum::<u64>());
            }
            2 => wh.rotate(),
            _ => {
                let d = r.delta_since(&mut tracker);
                scraped += d.counters.get("fuzz.n").copied().unwrap_or(0);
            }
        }
    }
    scraped += r
        .delta_since(&mut tracker)
        .counters
        .get("fuzz.n")
        .copied()
        .unwrap_or(0);
    assert_eq!(scraped, recorded, "deltas must partition the lifetime");
}
