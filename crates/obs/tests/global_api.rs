//! Tests for the process-global recorder and enabled-state switch.
//!
//! These live in their own integration-test binary (own process) so
//! they fully control the global state; a static mutex serializes the
//! tests within the binary.

use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

#[test]
fn disabled_by_default_records_nothing() {
    let _g = LOCK.lock().unwrap();
    // BILLCAP_TRACE is not set in the test environment, but another
    // test may have flipped the switch; force a known state.
    billcap_obs::set_enabled(false);
    billcap_obs::reset();

    assert!(!billcap_obs::enabled());
    {
        let mut s = billcap_obs::span("hour");
        assert!(!s.is_enabled());
        s.field("x", 1.0);
    }
    billcap_obs::counter("c", 5);
    billcap_obs::gauge("g", 1.0);
    billcap_obs::observe("h", 2.0);
    assert!(billcap_obs::snapshot().is_empty());
}

#[test]
fn enabled_records_through_free_functions() {
    let _g = LOCK.lock().unwrap();
    billcap_obs::set_enabled(true);
    billcap_obs::reset();

    {
        let mut s = billcap_obs::span("hour");
        assert!(s.is_enabled());
        s.field("cost", 9.5);
        let _inner = billcap_obs::span("mip");
        billcap_obs::counter("milp.bnb.nodes", 3);
    }
    billcap_obs::gauge("budget.slack", -1.0);
    billcap_obs::observe_with("depth", 2.0, &[1.0, 4.0]);

    let snap = billcap_obs::snapshot();
    assert_eq!(snap.counters["milp.bnb.nodes"], 3);
    assert_eq!(snap.spans["hour"].count, 1);
    assert_eq!(snap.spans["hour/mip"].count, 1);
    assert_eq!(snap.gauges["budget.slack"].last, -1.0);
    assert_eq!(snap.histograms["depth"].counts, vec![0, 1, 0]);
    assert_eq!(snap.orphans, 0);

    billcap_obs::set_enabled(false);
    billcap_obs::reset();
}

#[test]
fn toggling_mid_run_drops_only_disabled_records() {
    let _g = LOCK.lock().unwrap();
    billcap_obs::set_enabled(true);
    billcap_obs::reset();

    billcap_obs::counter("kept", 1);
    billcap_obs::set_enabled(false);
    billcap_obs::counter("dropped", 1);
    billcap_obs::set_enabled(true);
    billcap_obs::counter("kept", 1);

    let snap = billcap_obs::snapshot();
    assert_eq!(snap.counters.get("kept"), Some(&2));
    assert_eq!(snap.counters.get("dropped"), None);

    billcap_obs::set_enabled(false);
    billcap_obs::reset();
}

#[test]
fn env_trace_path_parses_values() {
    // Pure function of the env var; uses the real environment, which
    // does not define BILLCAP_TRACE for unit runs -- and when CI runs
    // the suite under BILLCAP_TRACE=1, the switch-like value still maps
    // to None.
    match std::env::var(billcap_obs::TRACE_ENV) {
        Err(_) => assert_eq!(billcap_obs::env_trace_path(), None),
        Ok(v) if matches!(v.as_str(), "" | "0" | "1" | "true" | "on") => {
            assert_eq!(billcap_obs::env_trace_path(), None)
        }
        Ok(v) => assert_eq!(billcap_obs::env_trace_path(), Some(v)),
    }
}
