//! Anti-cycling regression tests.
//!
//! Beale's classic LP cycles forever under textbook Dantzig pricing with a
//! naive ratio test: every pivot is degenerate and after six pivots the
//! tableau repeats. The solvers must escape via the consecutive-degenerate
//! Bland trigger alone — these tests disable the total-iteration fallback
//! (`bland_after = usize::MAX`) and cap `max_iterations` low enough that an
//! actual cycle would hit the limit instead of terminating.

use billcap_milp::{ConstraintOp, LpSolver, Model, Pricing, RevisedEngine, RevisedOptions, Sense};

/// Beale (1955): min -0.75 x1 + 150 x2 - 0.02 x3 + 6 x4, the canonical
/// cycling instance. Optimum -0.77 at x1 = 1, x3 = 1.
fn beale() -> Model {
    beale_with_ub(f64::INFINITY)
}

/// Beale's LP with a large finite box. The constraints bind long before
/// the box does (x1 <= x3 <= 1 via c2/c3), so the optimum is unchanged;
/// the finite bounds are what the revised engine's dual cold start needs
/// to place the negative-cost columns.
fn beale_boxed() -> Model {
    beale_with_ub(1e3)
}

fn beale_with_ub(ub: f64) -> Model {
    let mut m = Model::new("beale", Sense::Minimize);
    let x1 = m.add_cont("x1", 0.0, ub);
    let x2 = m.add_cont("x2", 0.0, ub);
    let x3 = m.add_cont("x3", 0.0, ub);
    let x4 = m.add_cont("x4", 0.0, ub);
    m.add_constraint(
        "c1",
        vec![(x1, 0.25), (x2, -8.0), (x3, -1.0), (x4, 9.0)],
        ConstraintOp::Le,
        0.0,
    );
    m.add_constraint(
        "c2",
        vec![(x1, 0.5), (x2, -12.0), (x3, -0.5), (x4, 3.0)],
        ConstraintOp::Le,
        0.0,
    );
    m.add_constraint("c3", vec![(x3, 1.0)], ConstraintOp::Le, 1.0);
    m.set_objective(vec![(x1, -0.75), (x2, 150.0), (x3, -0.02), (x4, 6.0)], 0.0);
    m
}

#[test]
fn dense_escapes_beale_via_degenerate_trigger_alone() {
    // With the total-iteration trigger off, only the consecutive-degenerate
    // trigger stands between Dantzig pricing and the iteration limit.
    let solver = LpSolver {
        pricing: Pricing::Dantzig,
        bland_after: usize::MAX,
        max_iterations: 2_000,
        ..Default::default()
    };
    let s = solver
        .solve(&beale())
        .expect("must terminate at the optimum");
    assert!(
        (s.objective - -0.77).abs() < 1e-9,
        "objective {} != -0.77",
        s.objective
    );
    assert!(m_is_feasible(&s.values));
    // The escape is observable: the degenerate-pivot counter must have
    // registered the run that tripped the trigger.
    assert!(s.degenerate > 0, "expected degenerate pivots on Beale's LP");
}

fn m_is_feasible(values: &[f64]) -> bool {
    beale().is_feasible(values, 1e-7)
}

#[test]
fn dense_trigger_threshold_is_respected() {
    // A tiny threshold must still reach the same optimum (Bland from the
    // first degenerate run onward), just possibly in more pivots.
    let eager = LpSolver {
        bland_after: usize::MAX,
        bland_after_degenerate: 1,
        max_iterations: 2_000,
        ..Default::default()
    };
    let s = eager
        .solve(&beale())
        .expect("bland-from-the-start terminates");
    assert!((s.objective - -0.77).abs() < 1e-9);
}

#[test]
fn revised_escapes_beale_via_degenerate_trigger_alone() {
    // Same property for the sparse revised engine: its sticky Bland mode
    // kicks in after `bland_after_degenerate` consecutive degenerate
    // pivots, well under the iteration cap.
    let model = beale_boxed();
    let opts = RevisedOptions {
        max_iterations: 2_000,
        bland_after_degenerate: 8,
        ..RevisedOptions::default()
    };
    let engine = RevisedEngine::new(&model, opts);
    assert!(
        engine.cold_startable(),
        "boxed beale admits a dual cold start"
    );
    let sol = engine.solve(None).expect("must terminate at the optimum");
    let obj: f64 = model.eval_objective(&sol.values);
    assert!((obj - -0.77).abs() < 1e-9, "objective {obj} != -0.77");
}

#[test]
fn dense_and_revised_agree_on_beale() {
    let model = beale_boxed();
    let dense = LpSolver::default().solve(&model).expect("dense solves");
    let engine = RevisedEngine::new(&model, RevisedOptions::default());
    let revised = engine.solve(None).expect("revised solves");
    let robj = model.eval_objective(&revised.values);
    assert!(
        (dense.objective - robj).abs() < 1e-9,
        "dense {} vs revised {robj}",
        dense.objective
    );
}
