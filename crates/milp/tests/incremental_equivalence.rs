//! Incremental-model equivalence: mutate-then-solve must equal
//! rebuild-then-solve.
//!
//! 256 seeded (model, mutation-sequence) cases. Each case draws a small
//! mixed-integer program, wraps one copy in an [`IncrementalModel`] and
//! mirrors every mutation into a plain spec that is rebuilt from scratch
//! each step. After every mutation both paths are solved and compared:
//!
//! * **Exact mode** (no basis reuse — the serve daemon's default): the
//!   mutated model is float-for-float identical to the rebuilt one, so
//!   the solutions must match *bitwise* (objective bits and every value),
//!   and infeasibility verdicts must agree.
//! * **Basis-reuse mode**: the carried root basis may land on a different
//!   vertex among alternative optima, so objectives are compared within
//!   tolerance and both solutions must pass the independent
//!   [`certify_solution`] checker (primal feasibility, integrality,
//!   objective honesty, bound consistency).
//!
//! Mutation kinds cover the whole value surface — RHS, matrix
//! coefficients, objective coefficients, variable bounds — plus targeted
//! RHS moves that flip a row from binding to slack (and back) at the
//! current optimum, the case where a stale basis is most tempting.

use billcap_milp::{
    certify_solution, ConstraintOp, IncrementalModel, IncrementalSolver, MipSolver, Model, Sense,
    SolveError, VarId, VarType,
};
use billcap_rt::{Rng, Xoshiro256pp};

const CASES: usize = 256;
const MUTATIONS_PER_CASE: usize = 6;

/// The value state of one instance: everything a mutation can touch.
/// `build()` reconstructs a fresh [`Model`] in a fixed order, so two
/// builds from equal states are float-for-float identical.
#[derive(Debug, Clone)]
struct SpecState {
    n: usize,
    integer: Vec<bool>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    a: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    c: Vec<f64>,
}

impl SpecState {
    fn random(rng: &mut Xoshiro256pp) -> Self {
        let n = rng.random_usize_in(1, 3);
        let m = rng.random_usize_in(1, 3);
        let integer = (0..n).map(|_| rng.random_f64_in(0.0, 1.0) < 0.6).collect();
        let ub: Vec<f64> = (0..n).map(|_| rng.random_i64_in(1, 4) as f64).collect();
        let a = (0..m)
            .map(|_| (0..n).map(|_| rng.random_i64_in(-3, 5) as f64).collect())
            .collect();
        // b >= 0 keeps x = 0 feasible at the start; mutations may later
        // make the instance infeasible, which both paths must agree on.
        let rhs = (0..m).map(|_| rng.random_i64_in(0, 20) as f64).collect();
        let c = (0..n).map(|_| rng.random_i64_in(-5, 5) as f64).collect();
        Self {
            n,
            integer,
            lb: vec![0.0; n],
            ub,
            a,
            rhs,
            c,
        }
    }

    fn build(&self) -> Model {
        let mut m = Model::new("inc-eq", Sense::Maximize);
        let vars: Vec<_> = (0..self.n)
            .map(|j| {
                let vt = if self.integer[j] {
                    VarType::Integer
                } else {
                    VarType::Continuous
                };
                m.add_var(format!("x{j}"), vt, self.lb[j], self.ub[j])
            })
            .collect();
        for (i, row) in self.a.iter().enumerate() {
            m.add_constraint(
                format!("c{i}"),
                vars.iter().zip(row).map(|(&v, &aij)| (v, aij)).collect(),
                ConstraintOp::Le,
                self.rhs[i],
            );
        }
        m.set_objective(
            vars.iter().zip(&self.c).map(|(&v, &cj)| (v, cj)).collect(),
            0.0,
        );
        m
    }
}

/// One value-only edit, applied identically to the incremental model and
/// the rebuild spec.
#[derive(Debug, Clone, Copy)]
enum Mutation {
    Rhs { row: usize, rhs: f64 },
    Coeff { row: usize, var: usize, coeff: f64 },
    Objective { var: usize, coeff: f64 },
    Bounds { var: usize, lb: f64, ub: f64 },
}

impl Mutation {
    /// Draws a random edit; `last_values` (the previous optimum, if any)
    /// enables the binding↔slack RHS flips.
    fn random(rng: &mut Xoshiro256pp, spec: &SpecState, last_values: Option<&[f64]>) -> Self {
        let kind = rng.random_usize_in(0, 5);
        match kind {
            0 => Mutation::Rhs {
                row: rng.random_usize_in(0, spec.rhs.len() - 1),
                rhs: rng.random_i64_in(0, 20) as f64,
            },
            1 => Mutation::Coeff {
                row: rng.random_usize_in(0, spec.rhs.len() - 1),
                var: rng.random_usize_in(0, spec.n - 1),
                coeff: rng.random_i64_in(-3, 5) as f64,
            },
            2 => Mutation::Objective {
                var: rng.random_usize_in(0, spec.n - 1),
                coeff: rng.random_i64_in(-5, 5) as f64,
            },
            3 => {
                let var = rng.random_usize_in(0, spec.n - 1);
                let lb = rng.random_i64_in(0, 1) as f64;
                let ub = rng.random_i64_in(lb as i64, 4) as f64;
                Mutation::Bounds { var, lb, ub }
            }
            _ => {
                // Binding↔slack flip: move a row's rhs exactly onto the
                // current optimum's activity (slack → binding) or well
                // past it (binding → slack). Falls back to a plain RHS
                // draw when no optimum is available.
                let row = rng.random_usize_in(0, spec.rhs.len() - 1);
                match last_values {
                    Some(x) => {
                        let activity: f64 =
                            spec.a[row].iter().zip(x).map(|(aij, xj)| aij * xj).sum();
                        let rhs = if kind == 4 {
                            activity // make the row exactly binding
                        } else {
                            activity + rng.random_i64_in(1, 5) as f64 // clearly slack
                        };
                        Mutation::Rhs { row, rhs }
                    }
                    None => Mutation::Rhs {
                        row,
                        rhs: rng.random_i64_in(0, 20) as f64,
                    },
                }
            }
        }
    }

    fn apply(self, spec: &mut SpecState, im: &mut IncrementalModel) {
        match self {
            Mutation::Rhs { row, rhs } => {
                spec.rhs[row] = rhs;
                im.set_rhs(&format!("c{row}"), rhs).expect("row exists");
            }
            Mutation::Coeff { row, var, coeff } => {
                spec.a[row][var] = coeff;
                im.set_coeff(&format!("c{row}"), VarId::from_index(var), coeff)
                    .expect("dense rows: every term exists");
            }
            Mutation::Objective { var, coeff } => {
                spec.c[var] = coeff;
                im.set_objective_coeff(VarId::from_index(var), coeff)
                    .expect("dense objective: every term exists");
            }
            Mutation::Bounds { var, lb, ub } => {
                spec.lb[var] = lb;
                spec.ub[var] = ub;
                im.set_var_bounds(VarId::from_index(var), lb, ub)
                    .expect("ordered bounds");
            }
        }
    }
}

/// Runs `check` against `CASES` seeded instances, reporting the failing
/// case index and spec on panic (same harness as `randomized_milp.rs`).
fn for_random_cases(seed: u64, check: impl Fn(&mut Xoshiro256pp, SpecState)) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    for case in 0..CASES {
        let spec = SpecState::random(&mut rng);
        let snapshot = spec.clone();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&mut rng, spec)));
        if let Err(e) = result {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            panic!("case {case} failed starting from {snapshot:?}: {msg}");
        }
    }
}

/// Exact mode: mutate-then-solve is bitwise identical to
/// rebuild-then-solve after every mutation, including agreeing on
/// infeasibility.
#[test]
fn exact_mode_matches_rebuild_bitwise() {
    for_random_cases(0xA100, |rng, mut spec| {
        let mut im = IncrementalModel::new(spec.build()).expect("valid model");
        let hash = im.structural_hash();
        let mut inc = IncrementalSolver::new(MipSolver::default());
        let mut last_values: Option<Vec<f64>> = None;
        for step in 0..MUTATIONS_PER_CASE {
            let mutation = Mutation::random(rng, &spec, last_values.as_deref());
            mutation.apply(&mut spec, &mut im);
            assert_eq!(
                im.structural_hash(),
                hash,
                "step {step}: value mutation moved the structural hash"
            );
            let fresh = spec.build();
            let a = inc.solve(&im);
            let b = MipSolver::default().solve(&fresh);
            match (&a, &b) {
                (Ok(sa), Ok(sb)) => {
                    assert_eq!(
                        sa.objective.to_bits(),
                        sb.objective.to_bits(),
                        "step {step} ({mutation:?}): objective {} vs {}",
                        sa.objective,
                        sb.objective
                    );
                    assert_eq!(
                        sa.values, sb.values,
                        "step {step} ({mutation:?}): values diverged"
                    );
                    let report = certify_solution(&fresh, sb);
                    assert!(
                        report.certified(),
                        "step {step}: rebuild solution fails certification: {:?}",
                        report.violations
                    );
                    last_values = Some(sb.values.clone());
                }
                (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {
                    last_values = None;
                }
                _ => panic!("step {step} ({mutation:?}): outcomes diverged: {a:?} vs {b:?}"),
            }
        }
    });
}

/// Basis-reuse mode: the carried root basis never changes the optimum.
/// Objectives match the rebuild oracle within tolerance and every
/// returned solution passes independent certification.
#[test]
fn basis_reuse_preserves_the_optimum() {
    for_random_cases(0xA200, |rng, mut spec| {
        let mut im = IncrementalModel::new(spec.build()).expect("valid model");
        let mut warm = IncrementalSolver::new(MipSolver::default());
        warm.reuse_basis = true;
        let mut last_values: Option<Vec<f64>> = None;
        for step in 0..MUTATIONS_PER_CASE {
            let mutation = Mutation::random(rng, &spec, last_values.as_deref());
            mutation.apply(&mut spec, &mut im);
            let fresh = spec.build();
            let a = warm.solve(&im);
            let b = MipSolver::default().solve(&fresh);
            match (&a, &b) {
                (Ok(sa), Ok(sb)) => {
                    let scale = sb.objective.abs().max(1.0);
                    assert!(
                        (sa.objective - sb.objective).abs() <= 1e-7 * scale,
                        "step {step} ({mutation:?}): warm {} vs rebuild {}",
                        sa.objective,
                        sb.objective
                    );
                    for (label, model, sol) in [("warm", im.model(), sa), ("rebuild", &fresh, sb)] {
                        let report = certify_solution(model, sol);
                        assert!(
                            report.certified(),
                            "step {step}: {label} solution fails certification: {:?}",
                            report.violations
                        );
                    }
                    last_values = Some(sb.values.clone());
                }
                (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {
                    last_values = None;
                }
                _ => panic!("step {step} ({mutation:?}): outcomes diverged: {a:?} vs {b:?}"),
            }
        }
    });
}

/// The parallel solver is also exact on mutated models (it ignores any
/// carried basis, so this is pure mutate-vs-rebuild equivalence). The
/// parallel contract is bitwise-identical *objectives*: on instances
/// with non-unique optima, schedule-dependent pruning can discard a
/// node holding an equal-objective alternative vertex before it offers,
/// so the value vectors of two parallel runs may legitimately differ.
/// Both solutions must still certify against their models.
#[test]
fn parallel_solver_matches_rebuild_on_mutated_models() {
    let par = MipSolver {
        threads: 4,
        ..Default::default()
    };
    for_random_cases(0xA300, |rng, mut spec| {
        let mut im = IncrementalModel::new(spec.build()).expect("valid model");
        for _ in 0..MUTATIONS_PER_CASE {
            let mutation = Mutation::random(rng, &spec, None);
            mutation.apply(&mut spec, &mut im);
        }
        let fresh = spec.build();
        let a = par.solve(im.model());
        let b = par.solve(&fresh);
        match (&a, &b) {
            (Ok(sa), Ok(sb)) => {
                assert_eq!(sa.objective.to_bits(), sb.objective.to_bits());
                for (label, model, sol) in [("mutated", im.model(), sa), ("rebuild", &fresh, sb)] {
                    let report = certify_solution(model, sol);
                    assert!(
                        report.certified(),
                        "{label} solution fails certification: {:?}",
                        report.violations
                    );
                }
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            _ => panic!("outcomes diverged: {a:?} vs {b:?}"),
        }
    });
}
