//! Randomized property tests: the simplex/branch-and-bound stack against
//! brute-force enumeration on small bounded integer programs, plus
//! feasibility and relaxation-bound invariants on random LPs.
//!
//! Cases are drawn from a seeded [`billcap_rt`] generator, so every run
//! checks the exact same instances — failures reproduce by construction,
//! with no external property-testing framework required.

use billcap_milp::{
    parse_lp, presolve, write_lp, ConstraintOp, LpSolver, MipSolver, Model, Sense, SolveError,
    VarType,
};
use billcap_rt::{Rng, Xoshiro256pp};

const CASES: usize = 256;

/// A small random integer program: `max c'x  s.t.  Ax <= b, 0 <= x <= ubound`.
#[derive(Debug, Clone)]
struct SmallIp {
    n: usize,
    a: Vec<Vec<f64>>,
    b: Vec<f64>,
    c: Vec<f64>,
    ubound: i64,
}

impl SmallIp {
    /// Draws an instance; `b >= 0`, so `x = 0` is always feasible.
    fn random(rng: &mut Xoshiro256pp) -> Self {
        let n = rng.random_usize_in(1, 3);
        let m = rng.random_usize_in(1, 3);
        let ubound = rng.random_i64_in(1, 4);
        let a = (0..m)
            .map(|_| (0..n).map(|_| rng.random_i64_in(-3, 5) as f64).collect())
            .collect();
        let b = (0..m).map(|_| rng.random_i64_in(0, 20) as f64).collect();
        let c = (0..n).map(|_| rng.random_i64_in(-5, 5) as f64).collect();
        Self { n, a, b, c, ubound }
    }
}

/// Exhaustive optimum of a `SmallIp` (x = 0 is always feasible since b >= 0).
fn brute_force(ip: &SmallIp) -> f64 {
    let mut best = f64::NEG_INFINITY;
    let points = (ip.ubound + 1).pow(ip.n as u32);
    for code in 0..points {
        let mut x = Vec::with_capacity(ip.n);
        let mut rem = code;
        for _ in 0..ip.n {
            x.push((rem % (ip.ubound + 1)) as f64);
            rem /= ip.ubound + 1;
        }
        let feasible = ip.a.iter().zip(&ip.b).all(|(row, &bi)| {
            row.iter().zip(&x).map(|(aij, xj)| aij * xj).sum::<f64>() <= bi + 1e-9
        });
        if feasible {
            let obj: f64 = ip.c.iter().zip(&x).map(|(cj, xj)| cj * xj).sum();
            best = best.max(obj);
        }
    }
    best
}

fn build_model(ip: &SmallIp, integer: bool) -> Model {
    let mut m = Model::new("prop", Sense::Maximize);
    let vt = if integer {
        VarType::Integer
    } else {
        VarType::Continuous
    };
    let vars: Vec<_> = (0..ip.n)
        .map(|j| m.add_var(format!("x{j}"), vt, 0.0, ip.ubound as f64))
        .collect();
    for (i, (row, &bi)) in ip.a.iter().zip(&ip.b).enumerate() {
        m.add_constraint(
            format!("c{i}"),
            vars.iter().zip(row).map(|(&v, &aij)| (v, aij)).collect(),
            ConstraintOp::Le,
            bi,
        );
    }
    m.set_objective(
        vars.iter().zip(&ip.c).map(|(&v, &cj)| (v, cj)).collect(),
        0.0,
    );
    m
}

/// Runs `check` against `CASES` seeded instances, reporting the failing
/// case index and instance on panic.
fn for_random_ips(seed: u64, check: impl Fn(&mut Xoshiro256pp, &SmallIp)) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    for case in 0..CASES {
        let ip = SmallIp::random(&mut rng);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&mut rng, &ip)));
        if let Err(e) = result {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            panic!("case {case} failed on {ip:?}: {msg}");
        }
    }
}

/// Branch-and-bound matches exhaustive enumeration exactly — with one
/// worker and with eight.
#[test]
fn mip_matches_brute_force() {
    let parallel = MipSolver {
        threads: 8,
        ..Default::default()
    };
    for_random_ips(0x1000, |_, ip| {
        let expected = brute_force(ip);
        let model = build_model(ip, true);
        let sol = MipSolver::default().solve(&model).expect("x=0 is feasible");
        assert!(
            (sol.objective - expected).abs() < 1e-6,
            "mip {} != brute {}",
            sol.objective,
            expected
        );
        assert!(model.is_feasible(&sol.values, 1e-6));
        let par = parallel.solve(&model).expect("x=0 is feasible");
        assert_eq!(
            par.objective, sol.objective,
            "parallel objective diverged from sequential"
        );
    });
}

/// The LP relaxation is an upper bound on the integer optimum, and the
/// LP solution is primal feasible for the relaxed model.
#[test]
fn lp_relaxation_bounds_mip() {
    for_random_ips(0x2000, |_, ip| {
        let int_model = build_model(ip, true);
        let rel_model = build_model(ip, false);
        let mip = MipSolver::default().solve(&int_model).unwrap();
        let lp = LpSolver::default().solve(&rel_model).unwrap();
        assert!(
            lp.objective >= mip.objective - 1e-6,
            "lp {} < mip {}",
            lp.objective,
            mip.objective
        );
        assert!(rel_model.is_feasible(&lp.values, 1e-6));
    });
}

/// Scaling the objective scales the optimum; translating constraints'
/// rhs upward (looser) never decreases a maximization optimum.
#[test]
fn objective_scaling_and_rhs_monotonicity() {
    for_random_ips(0x3000, |rng, ip| {
        let k = rng.random_f64_in(1.0, 5.0);
        let model = build_model(ip, false);
        let base = LpSolver::default().solve(&model).unwrap();

        let mut scaled = build_model(ip, false);
        scaled.set_objective(
            model
                .objective()
                .to_vec()
                .into_iter()
                .map(|(v, c)| (v, c * k))
                .collect(),
            0.0,
        );
        let s = LpSolver::default().solve(&scaled).unwrap();
        assert!((s.objective - k * base.objective).abs() < 1e-6 * (1.0 + base.objective.abs() * k));

        let mut looser = ip.clone();
        for bi in &mut looser.b {
            *bi += 1.0;
        }
        let loose_model = build_model(&looser, false);
        let l = LpSolver::default().solve(&loose_model).unwrap();
        assert!(l.objective >= base.objective - 1e-7);
    });
}

/// Presolve preserves the optimum exactly: solving the reduced model
/// and restoring gives the same objective as solving directly.
#[test]
fn presolve_preserves_optimum() {
    for_random_ips(0x4000, |_, ip| {
        let model = build_model(ip, true);
        let direct = MipSolver::default().solve(&model).unwrap();
        let p = presolve(&model).expect("x = 0 is feasible, presolve cannot prove infeasible");
        let reduced_sol = MipSolver::default().solve(&p.reduced).unwrap();
        let full = p.restore(&reduced_sol.values);
        let obj = model.eval_objective(&full);
        assert!(
            (obj - direct.objective).abs() < 1e-6,
            "presolved {obj} vs direct {}",
            direct.objective
        );
        assert!(model.is_feasible(&full, 1e-6));
    });
}

/// Presolve equivalence on models that actually trigger its rules: the
/// base instance is decorated with a fixed variable substituted into a
/// coupling row, a singleton row folding into bounds, and a big-M
/// indicator row for the propagation pass. Solving the reduced model and
/// restoring must match the direct solve — and so must disabling root
/// propagation in the branch-and-bound.
#[test]
fn presolve_equivalence_with_fixed_singleton_and_bigm_rows() {
    let no_prop = MipSolver {
        root_propagation: false,
        ..Default::default()
    };
    for_random_ips(0x7000, |rng, ip| {
        let mut model = build_model(ip, true);
        let vars: Vec<_> = (0..ip.n).map(billcap_milp::VarId::from_index).collect();

        // A variable fixed by declaration, coupled to the others so its
        // substitution rewrites a multi-term row's rhs.
        let fv = rng.random_i64_in(0, 3) as f64;
        let fixed = model.add_var("fixed", VarType::Integer, fv, fv);
        let mut coupling: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        coupling.push((fixed, 1.0));
        let slack = rng.random_i64_in(0, 10) as f64;
        model.add_constraint(
            "couple",
            coupling,
            ConstraintOp::Le,
            fv + ip.ubound as f64 * ip.n as f64 + slack,
        );

        // A singleton row tightening the first variable's upper bound.
        let cap = rng.random_i64_in(0, ip.ubound) as f64;
        model.add_constraint("single", vec![(vars[0], 2.0)], ConstraintOp::Le, 2.0 * cap);

        // A big-M indicator `q <= M z` with M far below q's declared
        // bound — the shape the propagation pass tightens (q <= M). M is
        // kept modest on purpose: an M near 1/INT_TOL lets the LP park z
        // at an "integral" sliver and round to an infeasible point,
        // which is exactly what lint code M002 warns about.
        let m_coef = rng.random_i64_in(2, 10) as f64;
        let q = model.add_var("q", VarType::Integer, 0.0, 100.0);
        let z = model.add_var("z", VarType::Binary, 0.0, 1.0);
        model.add_constraint("bigm", vec![(q, 1.0), (z, -m_coef)], ConstraintOp::Le, 0.0);
        let mut obj = model.objective().to_vec();
        obj.push((q, 1.0));
        model.set_objective(obj, 0.0);

        let direct = MipSolver::default().solve(&model).expect("x=0, z=0 works");
        let p = presolve(&model).expect("a feasible point exists");
        assert!(
            p.propagated >= 1,
            "the big-M row must trigger at least one propagated tightening"
        );
        assert!(
            p.fixed.iter().any(|&(v, x)| v == fixed && x == fv),
            "declared-fixed variable must be eliminated"
        );
        let reduced_sol = MipSolver::default().solve(&p.reduced).unwrap();
        let full = p.restore(&reduced_sol.values);
        let obj = model.eval_objective(&full);
        assert!(
            (obj - direct.objective).abs() < 1e-6,
            "presolved {obj} vs direct {}",
            direct.objective
        );
        assert!(model.is_feasible(&full, 1e-6));

        let unpropagated = no_prop.solve(&model).unwrap();
        assert!(
            (unpropagated.objective - direct.objective).abs() < 1e-6,
            "root propagation changed the optimum: {} vs {}",
            direct.objective,
            unpropagated.objective
        );
    });
}

/// LP-format round trip preserves the optimum on random models.
#[test]
fn lp_format_roundtrip_preserves_optimum() {
    for_random_ips(0x5000, |_, ip| {
        let model = build_model(ip, true);
        let direct = MipSolver::default().solve(&model).unwrap();
        let parsed = parse_lp(&write_lp(&model)).expect("own output parses");
        let back = MipSolver::default().solve(&parsed).unwrap();
        assert!(
            (back.objective - direct.objective).abs() < 1e-6,
            "roundtrip {} vs direct {}",
            back.objective,
            direct.objective
        );
    });
}

/// Adding an equality `sum(x) == t` for a feasible integer `t` keeps the
/// model solvable and the solution honours the equality.
#[test]
fn equality_pinning() {
    for_random_ips(0x6000, |rng, ip| {
        let t = rng.random_i64_in(0, 2);
        let mut model = build_model(ip, true);
        let vars: Vec<_> = (0..ip.n).map(billcap_milp::VarId::from_index).collect();
        model.add_constraint(
            "pin",
            vars.iter().map(|&v| (v, 1.0)).collect(),
            ConstraintOp::Eq,
            t as f64,
        );
        match MipSolver::default().solve(&model) {
            Ok(sol) => {
                let total: f64 = sol.values.iter().sum();
                assert!((total - t as f64).abs() < 1e-6);
                assert!(model.is_feasible(&sol.values, 1e-6));
            }
            Err(SolveError::Infeasible) => {} // legitimately infeasible
            Err(e) => panic!("unexpected: {e}"),
        }
    });
}
