//! Differential test suite: branch-and-bound vs the brute-force oracle.
//!
//! Seeded random small MILPs are solved three ways — by exhaustive
//! enumeration ([`billcap_milp::brute_force_solve`]), by the sequential
//! `MipSolver`, and by the parallel `MipSolver` at several thread counts.
//! Every feasible answer must agree on the objective, parallel objectives
//! must be *bitwise* equal to sequential ones, infeasibility verdicts must
//! coincide, and every returned solution must pass the independent
//! certificate checker. Instances reproduce exactly from the seed — no
//! external fuzzing framework involved.

use billcap_milp::{
    brute_force_solve, certify_solution, ConstraintOp, MipSolver, Model, Sense, Solution,
    SolveError, VarType,
};
use billcap_rt::{Rng, Xoshiro256pp};

/// Number of seeded instances per suite (the acceptance bar is 200 across
/// the suite; each of the two fuzz tests runs this many on its own).
const CASES: usize = 220;

/// Draws a random small MILP. Roughly half the instances are pure-integer
/// (the oracle then never touches the simplex), the rest mix in bounded
/// continuous variables; senses, operators and signs all vary. `Ge`/`Eq`
/// rows make a fraction of instances infeasible on purpose.
fn random_model(rng: &mut Xoshiro256pp, tag: usize) -> Model {
    let sense = if rng.random::<bool>() {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut m = Model::new(format!("diff_{tag}"), sense);
    let n_bin = rng.random_usize_in(2, 5);
    let n_int = rng.random_usize_in(0, 2);
    let n_cont = rng.random_usize_in(0, 2);
    let mut vars = Vec::new();
    for j in 0..n_bin {
        vars.push(m.add_binary(format!("b{j}")));
    }
    for j in 0..n_int {
        let ub = rng.random_i64_in(1, 3) as f64;
        vars.push(m.add_var(format!("k{j}"), VarType::Integer, 0.0, ub));
    }
    for j in 0..n_cont {
        let ub = rng.random_f64_in(1.0, 6.0);
        vars.push(m.add_cont(format!("x{j}"), 0.0, ub));
    }
    let rows = rng.random_usize_in(1, 4);
    for r in 0..rows {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.random::<f64>() < 0.8 {
                terms.push((v, rng.random_i64_in(-4, 6) as f64));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let op = match rng.random_below(10) {
            0..=6 => ConstraintOp::Le,
            7..=8 => ConstraintOp::Ge,
            _ => ConstraintOp::Eq,
        };
        let rhs = match op {
            // b >= 0-ish keeps a healthy share of Le-only instances feasible.
            ConstraintOp::Le => rng.random_i64_in(0, 12) as f64,
            ConstraintOp::Ge => rng.random_i64_in(-2, 6) as f64,
            ConstraintOp::Eq => rng.random_i64_in(0, 4) as f64,
        };
        m.add_constraint(format!("r{r}"), terms, op, rhs);
    }
    let obj: Vec<_> = vars
        .iter()
        .map(|&v| (v, rng.random_i64_in(-5, 7) as f64))
        .collect();
    m.set_objective(obj, rng.random_i64_in(-3, 3) as f64);
    m
}

fn solver(threads: usize) -> MipSolver {
    MipSolver {
        threads,
        ..MipSolver::default()
    }
}

fn assert_certified(m: &Model, sol: &Solution, what: &str, tag: usize) {
    let report = certify_solution(m, sol);
    assert!(
        report.certified(),
        "case {tag}: {what} solution failed certification: {report}"
    );
}

/// Oracle vs sequential solver vs parallel solver over seeded instances.
#[test]
fn solver_matches_oracle_and_parallel_is_bitwise_equal() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xD1FF);
    let mut feasible = 0usize;
    let mut infeasible = 0usize;
    for tag in 0..CASES {
        let m = random_model(&mut rng, tag);
        let oracle = brute_force_solve(&m);
        let seq = solver(1).solve(&m);
        match (&oracle, &seq) {
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {
                infeasible += 1;
            }
            (Ok(o), Ok(s)) => {
                feasible += 1;
                let tol = 1e-6 * (1.0 + o.objective.abs());
                assert!(
                    (o.objective - s.objective).abs() <= tol,
                    "case {tag}: oracle {} vs solver {}\n{m:?}",
                    o.objective,
                    s.objective
                );
                assert_certified(&m, o, "oracle", tag);
                assert_certified(&m, s, "sequential", tag);
                for threads in [2, 4] {
                    let par = solver(threads)
                        .solve(&m)
                        .unwrap_or_else(|e| panic!("case {tag}: {threads} threads: {e}"));
                    assert_eq!(
                        s.objective.to_bits(),
                        par.objective.to_bits(),
                        "case {tag}: sequential {} vs {threads}-thread {} not bitwise equal",
                        s.objective,
                        par.objective
                    );
                    assert_certified(&m, &par, "parallel", tag);
                }
            }
            (o, s) => panic!(
                "case {tag}: oracle and solver disagree on feasibility: {o:?} vs {s:?}\n{m:?}"
            ),
        }
    }
    // The generator must exercise both verdicts, and mostly feasible ones.
    assert!(
        feasible >= CASES / 2,
        "only {feasible}/{CASES} instances feasible"
    );
    assert!(infeasible > 0, "no infeasible instances generated");
}

/// Pure-binary knapsack-style instances hit the oracle's no-simplex path
/// and stress tie-breaking: many optima share the objective value.
#[test]
fn pure_binary_instances_agree_with_oracle() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xBEEF);
    for tag in 0..CASES {
        let mut m = Model::new(format!("knap_{tag}"), Sense::Maximize);
        let n = rng.random_usize_in(3, 8);
        let items: Vec<_> = (0..n).map(|j| m.add_binary(format!("b{j}"))).collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.random_i64_in(1, 9) as f64).collect();
        let cap = rng.random_i64_in(3, 20) as f64;
        m.add_constraint(
            "w",
            items.iter().copied().zip(weights).collect(),
            ConstraintOp::Le,
            cap,
        );
        m.set_objective(
            items
                .iter()
                .map(|&v| (v, rng.random_i64_in(0, 10) as f64))
                .collect(),
            0.0,
        );
        let oracle = brute_force_solve(&m).expect("x = 0 is always feasible");
        let sol = solver(1).solve(&m).expect("x = 0 is always feasible");
        assert!(
            (oracle.objective - sol.objective).abs() <= 1e-9 * (1.0 + oracle.objective.abs()),
            "case {tag}: oracle {} vs solver {}",
            oracle.objective,
            sol.objective
        );
        assert_certified(&m, &sol, "solver", tag);
        let par = solver(2).solve(&m).unwrap();
        assert_eq!(sol.objective.to_bits(), par.objective.to_bits());
    }
}

/// Draws a random box-bounded *continuous* LP: every variable has finite
/// bounds, so the revised engine's dual cold start always exists and the
/// dense-vs-revised comparison never silently falls back.
fn random_lp(rng: &mut Xoshiro256pp, tag: usize) -> Model {
    let sense = if rng.random::<bool>() {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut m = Model::new(format!("lp_{tag}"), sense);
    let n = rng.random_usize_in(2, 6);
    let vars: Vec<_> = (0..n)
        .map(|j| {
            let lb = rng.random_f64_in(-3.0, 0.0);
            let ub = lb + rng.random_f64_in(0.5, 8.0);
            m.add_cont(format!("x{j}"), lb, ub)
        })
        .collect();
    let rows = rng.random_usize_in(1, 4);
    for r in 0..rows {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.random::<f64>() < 0.8 {
                terms.push((v, rng.random_i64_in(-4, 6) as f64));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let op = match rng.random_below(10) {
            0..=6 => ConstraintOp::Le,
            7..=8 => ConstraintOp::Ge,
            _ => ConstraintOp::Eq,
        };
        let rhs = rng.random_i64_in(-2, 10) as f64;
        m.add_constraint(format!("r{r}"), terms, op, rhs);
    }
    m.set_objective(
        vars.iter()
            .map(|&v| (v, rng.random_i64_in(-5, 7) as f64))
            .collect(),
        rng.random_i64_in(-3, 3) as f64,
    );
    m
}

/// Dense two-phase simplex vs sparse revised simplex on seeded continuous
/// LPs: feasibility verdicts must coincide, objectives must agree within
/// certificate tolerance, and both solutions (duals included) must pass
/// the independent certificate checker.
#[test]
fn dense_and_revised_lps_agree_and_certify() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EED);
    let mut feasible = 0usize;
    let mut infeasible = 0usize;
    for tag in 0..CASES {
        let m = random_lp(&mut rng, tag);
        let dense = MipSolver {
            revised: false,
            ..MipSolver::default()
        }
        .solve(&m);
        let revised = MipSolver {
            revised: true,
            ..MipSolver::default()
        }
        .solve(&m);
        match (&dense, &revised) {
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => infeasible += 1,
            (Ok(d), Ok(r)) => {
                feasible += 1;
                let tol = 1e-6 * (1.0 + d.objective.abs());
                assert!(
                    (d.objective - r.objective).abs() <= tol,
                    "case {tag}: dense {} vs revised {}\n{m:?}",
                    d.objective,
                    r.objective
                );
                assert_certified(&m, d, "dense LP", tag);
                assert_certified(&m, r, "revised LP", tag);
                assert!(
                    r.duals.is_some(),
                    "case {tag}: revised LP solution carries no duals"
                );
            }
            (d, r) => panic!(
                "case {tag}: dense and revised disagree on feasibility: {d:?} vs {r:?}\n{m:?}"
            ),
        }
    }
    assert!(
        feasible >= CASES / 2,
        "only {feasible}/{CASES} LPs feasible"
    );
    assert!(infeasible > 0, "no infeasible LPs generated");
}

/// Warm-started vs cold-started vs dense branch-and-bound on seeded MILPs:
/// the three configurations must agree on feasibility and (within
/// certificate tolerance) on the optimal objective, and every incumbent
/// must certify. This is the `BILLCAP_WARMSTART=0` oracle in unit form.
#[test]
fn warm_cold_and_dense_mips_agree_and_certify() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x30A7);
    let mut feasible = 0usize;
    for tag in 0..CASES {
        let m = random_model(&mut rng, tag);
        let warm = MipSolver {
            revised: true,
            warm_start: true,
            threads: 1,
            ..MipSolver::default()
        }
        .solve(&m);
        let cold = MipSolver {
            revised: true,
            warm_start: false,
            threads: 1,
            ..MipSolver::default()
        }
        .solve(&m);
        let dense = MipSolver {
            revised: false,
            threads: 1,
            ..MipSolver::default()
        }
        .solve(&m);
        match (&warm, &cold, &dense) {
            (
                Err(SolveError::Infeasible),
                Err(SolveError::Infeasible),
                Err(SolveError::Infeasible),
            ) => {}
            (Ok(w), Ok(c), Ok(d)) => {
                feasible += 1;
                let tol = 1e-6 * (1.0 + d.objective.abs());
                assert!(
                    (w.objective - d.objective).abs() <= tol,
                    "case {tag}: warm {} vs dense {}\n{m:?}",
                    w.objective,
                    d.objective
                );
                assert!(
                    (c.objective - d.objective).abs() <= tol,
                    "case {tag}: cold {} vs dense {}\n{m:?}",
                    c.objective,
                    d.objective
                );
                assert_certified(&m, w, "warm-start", tag);
                assert_certified(&m, c, "cold-start", tag);
                assert_certified(&m, d, "dense", tag);
            }
            (w, c, d) => panic!(
                "case {tag}: configurations disagree on feasibility: \
                 warm {w:?} vs cold {c:?} vs dense {d:?}\n{m:?}"
            ),
        }
    }
    assert!(
        feasible >= CASES / 2,
        "only {feasible}/{CASES} instances feasible"
    );
}

/// The certifier must reject what the solver never produced: a corrupted
/// incumbent smuggled into an otherwise-genuine solution.
#[test]
fn certifier_rejects_cross_instance_solutions() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xCAFE);
    let mut rejected = 0usize;
    let mut attempts = 0usize;
    for tag in 0..40 {
        let a = random_model(&mut rng, 1000 + tag);
        let b = random_model(&mut rng, 2000 + tag);
        let (Ok(sa), Ok(sb)) = (solver(1).solve(&a), solver(1).solve(&b)) else {
            continue;
        };
        if sa.values.len() != sb.values.len() || sa.objective.to_bits() == sb.objective.to_bits() {
            continue;
        }
        // Same dimension, different optimum: b's solution claimed for a
        // must trip at least one certificate check.
        attempts += 1;
        if !certify_solution(&a, &sb).certified() {
            rejected += 1;
        }
    }
    assert!(attempts >= 5, "generator produced too few comparable pairs");
    assert!(
        rejected * 10 >= attempts * 9,
        "only {rejected}/{attempts} foreign solutions rejected"
    );
}
