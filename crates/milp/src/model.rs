//! Model builder: variables, bounds, integrality, constraints, objective.

use crate::error::SolveError;
use crate::expr::LinExpr;

/// Opaque handle to a variable within a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in the model's variable list (also the index
    /// into [`crate::Solution::values`]).
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds a handle from a raw index. The caller must ensure the index
    /// refers to a variable of the model it is used with; out-of-range
    /// handles are caught by [`Model::validate`].
    pub fn from_index(i: usize) -> Self {
        VarId(i)
    }
}

/// Integrality class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarType {
    /// Real-valued variable.
    Continuous,
    /// Integer-valued variable.
    Integer,
    /// Binary variable; equivalent to `Integer` with bounds clamped to `[0, 1]`.
    Binary,
}

/// A decision variable.
#[derive(Debug, Clone)]
pub struct Variable {
    /// Human-readable name, used in diagnostics and LP export.
    pub name: String,
    /// Continuous, integer or binary.
    pub var_type: VarType,
    /// Lower bound (may be `-inf`).
    pub lb: f64,
    /// Upper bound (may be `+inf`).
    pub ub: f64,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// A linear constraint `sum(coeff * var) op rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Human-readable name, used in diagnostics and LP export.
    pub name: String,
    /// `(variable, coefficient)` pairs of the linear expression.
    pub terms: Vec<(VarId, f64)>,
    /// Comparison operator against [`Constraint::rhs`].
    pub op: ConstraintOp,
    /// Right-hand-side constant.
    pub rhs: f64,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Find the smallest objective value.
    Minimize,
    /// Find the largest objective value.
    Maximize,
}

/// A mixed-integer linear program under construction.
///
/// The model is self-describing: variables carry names, bounds and
/// integrality; constraints carry names for diagnostics. Solving is done by
/// [`crate::LpSolver`] (continuous relaxation) or [`crate::MipSolver`]
/// (integer-feasible optimum).
#[derive(Debug, Clone)]
pub struct Model {
    /// Model name, used in diagnostics and LP export.
    pub name: String,
    /// Optimization direction.
    pub sense: Sense,
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
    objective: Vec<(VarId, f64)>,
    objective_constant: f64,
}

impl Model {
    /// Creates an empty model with the given optimization sense.
    pub fn new(name: impl Into<String>, sense: Sense) -> Self {
        Self {
            name: name.into(),
            sense,
            variables: Vec::new(),
            constraints: Vec::new(),
            objective: Vec::new(),
            objective_constant: 0.0,
        }
    }

    /// Adds a variable and returns its handle.
    ///
    /// Binary variables have their bounds clamped into `[0, 1]`.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        var_type: VarType,
        lb: f64,
        ub: f64,
    ) -> VarId {
        let (lb, ub) = match var_type {
            VarType::Binary => (lb.max(0.0), ub.min(1.0)),
            _ => (lb, ub),
        };
        self.variables.push(Variable {
            name: name.into(),
            var_type,
            lb,
            ub,
        });
        VarId(self.variables.len() - 1)
    }

    /// Convenience: a continuous variable on `[lb, ub]`.
    pub fn add_cont(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        self.add_var(name, VarType::Continuous, lb, ub)
    }

    /// Convenience: a binary variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(name, VarType::Binary, 0.0, 1.0)
    }

    /// Adds a constraint from raw terms.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: Vec<(VarId, f64)>,
        op: ConstraintOp,
        rhs: f64,
    ) {
        self.constraints.push(Constraint {
            name: name.into(),
            terms,
            op,
            rhs,
        });
    }

    /// Adds a constraint `expr op rhs` from a [`LinExpr`]; the expression's
    /// constant is moved to the right-hand side.
    pub fn add_expr_constraint(
        &mut self,
        name: impl Into<String>,
        expr: LinExpr,
        op: ConstraintOp,
        rhs: f64,
    ) {
        let (terms, constant) = expr.into_parts();
        self.add_constraint(name, terms, op, rhs - constant);
    }

    /// Sets the objective from raw terms plus a constant offset.
    pub fn set_objective(&mut self, terms: Vec<(VarId, f64)>, constant: f64) {
        self.objective = terms;
        self.objective_constant = constant;
    }

    /// Sets the objective from a [`LinExpr`].
    pub fn set_objective_expr(&mut self, expr: LinExpr) {
        let (terms, constant) = expr.into_parts();
        self.set_objective(terms, constant);
    }

    /// Tightens the bounds of an existing variable (used by branch-and-bound).
    pub fn set_var_bounds(&mut self, v: VarId, lb: f64, ub: f64) {
        let var = &mut self.variables[v.0];
        var.lb = lb;
        var.ub = ub;
    }

    /// Replaces the right-hand side of constraint `idx`.
    ///
    /// Value-only mutation: the constraint's terms, operator and name are
    /// untouched, so a solver-side structural cache (sparsity pattern,
    /// factorization symbolics, [`crate::incremental::IncrementalModel`]'s
    /// structural hash) stays valid.
    pub fn set_constraint_rhs(&mut self, idx: usize, rhs: f64) -> Result<(), SolveError> {
        let c = self
            .constraints
            .get_mut(idx)
            .ok_or_else(|| SolveError::InvalidModel(format!("no constraint #{idx}")))?;
        c.rhs = rhs;
        Ok(())
    }

    /// Replaces the coefficient of `v` in constraint `idx`.
    ///
    /// The term must already exist: introducing a new nonzero would change
    /// the sparsity pattern, which value-only mutation promises not to do.
    /// Errors name the constraint so misuse is diagnosable.
    pub fn set_constraint_coeff(
        &mut self,
        idx: usize,
        v: VarId,
        coeff: f64,
    ) -> Result<(), SolveError> {
        let c = self
            .constraints
            .get_mut(idx)
            .ok_or_else(|| SolveError::InvalidModel(format!("no constraint #{idx}")))?;
        match c.terms.iter_mut().find(|(var, _)| *var == v) {
            Some((_, old)) => {
                *old = coeff;
                Ok(())
            }
            None => Err(SolveError::InvalidModel(format!(
                "constraint '{}' has no term on variable #{}; value-only \
                 mutation cannot add nonzeros",
                c.name, v.0
            ))),
        }
    }

    /// Replaces the objective coefficient of `v`. Like
    /// [`set_constraint_coeff`](Self::set_constraint_coeff), the term must
    /// already exist in the objective.
    pub fn set_objective_coeff(&mut self, v: VarId, coeff: f64) -> Result<(), SolveError> {
        match self.objective.iter_mut().find(|(var, _)| *var == v) {
            Some((_, old)) => {
                *old = coeff;
                Ok(())
            }
            None => Err(SolveError::InvalidModel(format!(
                "objective has no term on variable #{}; value-only mutation \
                 cannot add nonzeros",
                v.0
            ))),
        }
    }

    /// The variables of the model.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// The constraints of the model.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The linear objective terms.
    pub fn objective(&self) -> &[(VarId, f64)] {
        &self.objective
    }

    /// The constant term of the objective.
    pub fn objective_constant(&self) -> f64 {
        self.objective_constant
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The `(lb, ub)` box of every variable, indexed like
    /// [`Model::variables`]. This is the per-node state branch-and-bound
    /// carries and the revised engine's [`set_var_bounds`] input shape.
    ///
    /// [`set_var_bounds`]: crate::revised::RevisedEngine::set_var_bounds
    pub fn var_bounds(&self) -> Vec<(f64, f64)> {
        self.variables.iter().map(|v| (v.lb, v.ub)).collect()
    }

    /// Indices of integer/binary variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v.var_type, VarType::Integer | VarType::Binary))
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Validates structural invariants: bound ordering, finite constraint
    /// data, and in-range variable references.
    pub fn validate(&self) -> Result<(), SolveError> {
        for (i, v) in self.variables.iter().enumerate() {
            if v.lb > v.ub {
                return Err(SolveError::InvalidModel(format!(
                    "variable '{}' (#{i}) has lb {} > ub {}",
                    v.name, v.lb, v.ub
                )));
            }
            if v.lb.is_nan() || v.ub.is_nan() {
                return Err(SolveError::InvalidModel(format!(
                    "variable '{}' (#{i}) has NaN bound",
                    v.name
                )));
            }
        }
        let n = self.variables.len();
        for c in &self.constraints {
            if !c.rhs.is_finite() {
                return Err(SolveError::InvalidModel(format!(
                    "constraint '{}' has non-finite rhs {}",
                    c.name, c.rhs
                )));
            }
            for &(v, coeff) in &c.terms {
                if v.0 >= n {
                    return Err(SolveError::InvalidModel(format!(
                        "constraint '{}' references unknown variable #{}",
                        c.name, v.0
                    )));
                }
                if !coeff.is_finite() {
                    return Err(SolveError::InvalidModel(format!(
                        "constraint '{}' has non-finite coefficient on '{}'",
                        c.name, self.variables[v.0].name
                    )));
                }
            }
        }
        for &(v, coeff) in &self.objective {
            if v.0 >= n {
                return Err(SolveError::InvalidModel(format!(
                    "objective references unknown variable #{}",
                    v.0
                )));
            }
            if !coeff.is_finite() {
                return Err(SolveError::InvalidModel(
                    "objective has non-finite coefficient".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// Evaluates the objective at a point.
    pub fn eval_objective(&self, values: &[f64]) -> f64 {
        self.objective_constant
            + self
                .objective
                .iter()
                .map(|&(v, c)| c * values[v.0])
                // detlint-allow(D006): sequential fixed-order objective dot product; bitwise-stable
                .sum::<f64>()
    }

    /// Checks primal feasibility of a point within tolerance `tol`
    /// (bounds, integrality for integer variables, and all constraints).
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.variables.len() {
            return false;
        }
        for (i, v) in self.variables.iter().enumerate() {
            let x = values[i];
            if x < v.lb - tol || x > v.ub + tol {
                return false;
            }
            if matches!(v.var_type, VarType::Integer | VarType::Binary)
                && (x - x.round()).abs() > crate::INT_TOL.max(tol)
            {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, coeff)| coeff * values[v.0]).sum();
            // Scale tolerance with the magnitude of the row to be robust on
            // rows with large coefficients (e.g. MW-scale power balances).
            let scale = 1.0
                + c.rhs.abs().max(
                    c.terms
                        .iter()
                        .map(|&(v, coeff)| (coeff * values[v.0]).abs())
                        .fold(0.0, f64::max),
                );
            let t = tol * scale;
            let ok = match c.op {
                ConstraintOp::Le => lhs <= c.rhs + t,
                ConstraintOp::Ge => lhs >= c.rhs - t,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= t,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_bounds_are_clamped() {
        let mut m = Model::new("t", Sense::Minimize);
        let b = m.add_var("b", VarType::Binary, -5.0, 5.0);
        assert_eq!(m.variables()[b.index()].lb, 0.0);
        assert_eq!(m.variables()[b.index()].ub, 1.0);
    }

    #[test]
    fn validate_rejects_inverted_bounds() {
        let mut m = Model::new("t", Sense::Minimize);
        m.add_cont("x", 2.0, 1.0);
        assert!(matches!(m.validate(), Err(SolveError::InvalidModel(_))));
    }

    #[test]
    fn validate_rejects_foreign_var() {
        let mut m = Model::new("t", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 1.0);
        m.add_constraint("c", vec![(VarId(5), 1.0)], ConstraintOp::Le, 1.0);
        let _ = x;
        assert!(matches!(m.validate(), Err(SolveError::InvalidModel(_))));
    }

    #[test]
    fn validate_rejects_nan_coefficient() {
        let mut m = Model::new("t", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 1.0);
        m.add_constraint("c", vec![(x, f64::NAN)], ConstraintOp::Le, 1.0);
        assert!(m.validate().is_err());
    }

    #[test]
    fn expr_constraint_moves_constant_to_rhs() {
        let mut m = Model::new("t", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        let e = LinExpr::var(x) + 3.0;
        m.add_expr_constraint("c", e, ConstraintOp::Le, 5.0);
        let c = &m.constraints()[0];
        assert_eq!(c.rhs, 2.0);
        assert_eq!(c.terms, vec![(x, 1.0)]);
    }

    #[test]
    fn feasibility_checks_bounds_constraints_integrality() {
        let mut m = Model::new("t", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        let k = m.add_var("k", VarType::Integer, 0.0, 10.0);
        m.add_constraint("c", vec![(x, 1.0), (k, 1.0)], ConstraintOp::Le, 8.0);
        assert!(m.is_feasible(&[3.0, 4.0], 1e-9));
        assert!(!m.is_feasible(&[3.0, 6.0], 1e-9)); // violates constraint
        assert!(!m.is_feasible(&[-1.0, 0.0], 1e-9)); // violates bound
        assert!(!m.is_feasible(&[3.0, 0.5], 1e-9)); // violates integrality
        assert!(!m.is_feasible(&[3.0], 1e-9)); // wrong dimension
    }

    #[test]
    fn eval_objective_includes_constant() {
        let mut m = Model::new("t", Sense::Maximize);
        let x = m.add_cont("x", 0.0, 10.0);
        m.set_objective(vec![(x, 2.0)], 7.0);
        assert_eq!(m.eval_objective(&[3.0]), 13.0);
    }

    #[test]
    fn value_mutators_rewrite_in_place() {
        let mut m = Model::new("t", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        let y = m.add_cont("y", 0.0, 10.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 2.0)], ConstraintOp::Le, 5.0);
        m.set_objective(vec![(x, 3.0)], 0.0);
        m.set_constraint_rhs(0, 7.0).unwrap();
        m.set_constraint_coeff(0, y, 4.0).unwrap();
        m.set_objective_coeff(x, 9.0).unwrap();
        assert_eq!(m.constraints()[0].rhs, 7.0);
        assert_eq!(m.constraints()[0].terms, vec![(x, 1.0), (y, 4.0)]);
        assert_eq!(m.objective(), &[(x, 9.0)]);
    }

    #[test]
    fn value_mutators_reject_missing_targets() {
        let mut m = Model::new("t", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        let y = m.add_cont("y", 0.0, 10.0);
        m.add_constraint("c", vec![(x, 1.0)], ConstraintOp::Le, 5.0);
        m.set_objective(vec![(x, 3.0)], 0.0);
        assert!(m.set_constraint_rhs(1, 0.0).is_err());
        assert!(m.set_constraint_coeff(0, y, 1.0).is_err());
        assert!(m.set_objective_coeff(y, 1.0).is_err());
    }

    #[test]
    fn integer_vars_lists_integers_and_binaries() {
        let mut m = Model::new("t", Sense::Minimize);
        let _x = m.add_cont("x", 0.0, 1.0);
        let k = m.add_var("k", VarType::Integer, 0.0, 5.0);
        let b = m.add_binary("b");
        assert_eq!(m.integer_vars(), vec![k, b]);
    }
}
