//! Best-first branch-and-bound over the simplex relaxation.
//!
//! With [`MipSolver::threads`] > 1 the search runs on a shared
//! best-bound frontier: workers pull open nodes from a heap protected by
//! a mutex, solve node relaxations independently on worker-local model
//! clones, and publish improving incumbents through an atomic cell that
//! every worker reads for global-bound pruning. The reduction is
//! deterministic — see the `parallel` submodule for why parallel and
//! sequential solves of well-posed instances return identical objectives.

use crate::error::SolveError;
use crate::model::{Model, Sense, VarId};
use crate::revised::{BasisState, RevisedEngine, RevisedError, RevisedOptions, RevisedStats};
use crate::simplex::LpSolver;
use crate::solution::{MipStats, Solution, SolveTrace, Status};
use crate::INT_TOL;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

mod parallel;

/// How to pick the fractional variable to branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchRule {
    /// Variable whose LP value is farthest from an integer.
    MostFractional,
    /// First fractional variable in index order.
    FirstFractional,
}

/// Order in which open nodes are explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeSelection {
    /// Always expand the node with the best relaxation bound
    /// (smallest lower bound for minimization). Proves optimality fastest.
    BestBound,
    /// LIFO stack; finds incumbents quickly with low memory.
    DepthFirst,
}

/// Branch-and-bound MILP solver.
#[derive(Debug, Clone)]
pub struct MipSolver {
    /// LP solver used for node relaxations.
    pub lp: LpSolver,
    /// Values within `int_tol` of an integer count as integral.
    pub int_tol: f64,
    /// Hard cap on explored nodes.
    pub max_nodes: usize,
    /// Branch variable selection rule.
    pub branch_rule: BranchRule,
    /// Node exploration order (sequential search only; the parallel
    /// search is always best-bound).
    pub node_selection: NodeSelection,
    /// Terminate when the relative gap falls below this value.
    pub gap_tol: f64,
    /// Worker count for the branch-and-bound search. `1` (the default)
    /// keeps the sequential search; `0` means "use
    /// [`billcap_rt::num_threads`]" (which honors `BILLCAP_THREADS`).
    pub threads: usize,
    /// Run activity-based bound propagation
    /// ([`crate::presolve::propagate_bounds`]) on the root node's bounds
    /// before the search (integer path only; pure-LP solves are
    /// untouched so their duals stay exact). Propagated bounds are
    /// implied by the model, so the optimum is unchanged — the search
    /// just starts from a tighter box. Default `true`.
    pub root_propagation: bool,
    /// Solve node relaxations with the sparse revised simplex
    /// ([`crate::revised`]) when the model admits a dual-feasible cold
    /// start; `false` forces the dense two-phase solver everywhere
    /// (the differential oracle). Models the revised engine cannot
    /// start (e.g. free variables) fall back to dense automatically.
    pub revised: bool,
    /// Warm-start each child node's dual simplex from its parent's
    /// optimal basis instead of a cold all-slack basis. Defaults to the
    /// `BILLCAP_WARMSTART` gate: on unless the variable is set to `0`.
    pub warm_start: bool,
}

/// The `BILLCAP_WARMSTART` gate: warm starts are on by default and
/// disabled only by an explicit `0` (the cold path then serves as a
/// differential oracle in CI).
fn warmstart_env() -> bool {
    // detlint-allow(D004): BILLCAP_WARMSTART gates a speedup whose output the differential oracle proves identical
    !matches!(std::env::var("BILLCAP_WARMSTART"), Ok(v) if v == "0")
}

impl Default for MipSolver {
    fn default() -> Self {
        Self {
            lp: LpSolver::default(),
            int_tol: INT_TOL,
            max_nodes: 200_000,
            branch_rule: BranchRule::MostFractional,
            node_selection: NodeSelection::BestBound,
            gap_tol: 1e-9,
            threads: 1,
            root_propagation: true,
            revised: true,
            warm_start: warmstart_env(),
        }
    }
}

/// An open node: per-variable bound overrides plus the parent's bound.
struct Node {
    /// `(lb, ub)` for every variable (small models; cloning is cheap and
    /// keeps the search state self-contained).
    bounds: Vec<(f64, f64)>,
    /// Relaxation bound inherited from the parent, in minimization space.
    bound: f64,
    depth: usize,
    /// The parent's optimal basis, for warm-starting this node's dual
    /// simplex. `None` at the root or when the parent solved densely.
    basis: Option<BasisState>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    // BinaryHeap is a max-heap; invert so the *smallest* bound pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.depth.cmp(&other.depth))
    }
}

enum Frontier {
    Heap(BinaryHeap<Node>),
    Stack(Vec<Node>),
}

impl Frontier {
    fn push(&mut self, n: Node) {
        match self {
            Frontier::Heap(h) => h.push(n),
            Frontier::Stack(s) => s.push(n),
        }
    }
    fn pop(&mut self) -> Option<Node> {
        match self {
            Frontier::Heap(h) => h.pop(),
            Frontier::Stack(s) => s.pop(),
        }
    }
    fn len(&self) -> usize {
        match self {
            Frontier::Heap(h) => h.len(),
            Frontier::Stack(s) => s.len(),
        }
    }
    fn best_bound(&self) -> Option<f64> {
        match self {
            Frontier::Heap(h) => h.peek().map(|n| n.bound),
            Frontier::Stack(s) => s
                .iter()
                .map(|n| n.bound)
                .min_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)),
        }
    }
}

/// A node relaxation result, engine-agnostic.
struct NodeSol {
    values: Vec<f64>,
    /// Objective in the model's sense.
    objective: f64,
    /// Simplex pivots spent on this node (all attempts).
    iterations: usize,
    /// Degenerate pivots among them.
    degenerate: usize,
    /// Optimal basis for warm-starting children (`None` from the dense
    /// fallback — children of a dense node cold-start).
    basis: Option<BasisState>,
}

/// Per-search LP backend: the sparse revised simplex with warm starts,
/// falling back to the dense two-phase solver per node on numerical
/// trouble or iteration limits, or for the whole search when the model
/// admits no dual-feasible cold start.
///
/// The fallback chain per node is `warm → cold → dense`; every rung is
/// a complete, independent solve of the same relaxation, so a fallback
/// costs time but never changes the answer.
struct NodeLp<'a> {
    solver: &'a MipSolver,
    engine: Option<RevisedEngine>,
    /// Dense-fallback clone whose bounds are overwritten per node.
    work: Model,
}

impl<'a> NodeLp<'a> {
    /// Builds the backend. Revised-startability is decided once, here,
    /// with the root bounds: children only tighten bounds, which can
    /// never turn a startable model unstartable.
    fn new(solver: &'a MipSolver, model: &Model, root_bounds: &[(f64, f64)]) -> Self {
        let engine = if solver.revised {
            let mut e = RevisedEngine::new(model, RevisedOptions::default());
            e.set_var_bounds(root_bounds);
            e.cold_startable().then_some(e)
        } else {
            None
        };
        Self {
            solver,
            engine,
            work: model.clone(),
        }
    }

    /// Folds a revised solve's work counters into the search trace
    /// (pivot counts travel separately, through [`NodeSol`], matching
    /// how the dense path accounts for them).
    fn absorb(trace: &mut SolveTrace, stats: &RevisedStats) {
        trace.factorizations += stats.factorizations;
        trace.refactorizations += stats.refactorizations;
        trace.bound_flips += stats.bound_flips;
    }

    /// Solves one node relaxation under `bounds`, warm-starting from
    /// `basis` when enabled and available. `verify_warm` runs the basis
    /// through [`RevisedEngine::solve_warm_verified`] first — required
    /// when the basis comes from *outside* this search tree (a previous
    /// solve of a mutated model), where dual feasibility is no longer an
    /// invariant; in-tree parent bases skip the check because bound
    /// changes cannot break dual feasibility.
    fn solve(
        &mut self,
        model: &Model,
        bounds: &[(f64, f64)],
        basis: Option<&BasisState>,
        verify_warm: bool,
        trace: &mut SolveTrace,
    ) -> Result<NodeSol, SolveError> {
        let mut iterations = 0usize;
        let mut degenerate = 0usize;
        if let Some(engine) = &mut self.engine {
            engine.set_var_bounds(bounds);
            let warm = if self.solver.warm_start { basis } else { None };
            let mut result = match warm {
                Some(w) if verify_warm => engine.solve_warm_verified(w),
                _ => engine.solve(warm),
            };
            if warm.is_some() {
                match &result {
                    Ok(_) | Err(RevisedError::Infeasible { .. }) => trace.warm_starts += 1,
                    Err(RevisedError::Numerical { stats }) => {
                        // The inherited basis went bad numerically; a
                        // cold start is cheaper than the dense fallback.
                        Self::absorb(trace, stats);
                        iterations += stats.iterations;
                        degenerate += stats.degenerate;
                        result = engine.solve(None);
                    }
                    Err(RevisedError::IterationLimit { .. }) => {}
                }
            }
            match result {
                Ok(sol) => {
                    Self::absorb(trace, &sol.stats);
                    return Ok(NodeSol {
                        objective: model.eval_objective(&sol.values),
                        values: sol.values,
                        iterations: iterations + sol.stats.iterations,
                        degenerate: degenerate + sol.stats.degenerate,
                        basis: Some(sol.basis),
                    });
                }
                Err(RevisedError::Infeasible { stats }) => {
                    Self::absorb(trace, &stats);
                    return Err(SolveError::Infeasible);
                }
                Err(e) => {
                    // Iteration limit or persistent numerical trouble:
                    // re-solve this node densely. Correctness is the
                    // dense solver's; only the wasted pivots remain.
                    let stats = e.stats();
                    Self::absorb(trace, &stats);
                    iterations += stats.iterations;
                    degenerate += stats.degenerate;
                }
            }
        }
        for (i, &(lb, ub)) in bounds.iter().enumerate() {
            self.work.set_var_bounds(VarId(i), lb, ub);
        }
        let s = self.solver.lp.solve(&self.work)?;
        Ok(NodeSol {
            values: s.values,
            objective: s.objective,
            iterations: iterations + s.iterations,
            degenerate: degenerate + s.degenerate,
            basis: None,
        })
    }
}

impl MipSolver {
    /// A solver using every available worker (see
    /// [`billcap_rt::num_threads`]); otherwise identical to the default.
    pub fn parallel() -> Self {
        Self {
            threads: 0,
            ..Self::default()
        }
    }

    /// The resolved worker count: `threads`, or the machine default when
    /// `threads == 0`.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => billcap_rt::num_threads(),
            n => n,
        }
    }

    /// Solves `model` to integer optimality (or best incumbent at the node
    /// limit, reported with [`Status::Feasible`]).
    pub fn solve(&self, model: &Model) -> Result<Solution, SolveError> {
        self.solve_with_root_basis(model, None).map(|(sol, _)| sol)
    }

    /// Like [`solve`](Self::solve), but warm-starts the *root* relaxation
    /// from a basis carried over from a previous solve and returns this
    /// solve's root-optimal basis for the next one — the cross-solve
    /// warm-start loop behind [`crate::incremental::IncrementalSolver`].
    ///
    /// The supplied basis is for the same constraint/variable *structure*
    /// with possibly different coefficient *values* (RHS, objective,
    /// matrix entries, bounds), so dual feasibility is no longer an
    /// invariant; the root solve verifies it and silently cold-starts on
    /// any violation — a correctness guarantee, not best-effort. Child
    /// nodes still inherit in-tree parent bases unverified, exactly as in
    /// [`solve`](Self::solve).
    ///
    /// The returned basis is `None` when the root solved densely, when
    /// warm starts are disabled, or on the parallel path (worker-local
    /// engines make root-basis capture racy; callers simply cold-start
    /// the next solve).
    pub fn solve_with_root_basis(
        &self,
        model: &Model,
        root_basis: Option<&BasisState>,
    ) -> Result<(Solution, Option<BasisState>), SolveError> {
        model.validate()?;
        let int_vars = model.integer_vars();
        if int_vars.is_empty() {
            let (mut sol, basis) = self.solve_pure_lp_warm(model, root_basis)?;
            sol.mip = Some(MipStats {
                nodes: 1,
                lp_iterations: sol.iterations,
                best_bound: sol.objective,
                gap: 0.0,
                trace: SolveTrace {
                    degenerate_pivots: sol.degenerate,
                    ..SolveTrace::default()
                },
            });
            record_obs(sol.mip.as_ref().expect("just set")); // repolint-allow(unwrap): set two lines above
            return Ok((sol, basis));
        }

        // Work in minimization space for pruning.
        let sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };

        // Root bounds, with integer bounds pre-rounded inward.
        let mut root_bounds = model.var_bounds();
        for &v in &int_vars {
            let (lb, ub) = root_bounds[v.index()];
            let lb = if lb.is_finite() {
                (lb - self.int_tol).ceil()
            } else {
                lb
            };
            let ub = if ub.is_finite() {
                (ub + self.int_tol).floor()
            } else {
                ub
            };
            if lb > ub {
                return Err(SolveError::Infeasible);
            }
            root_bounds[v.index()] = (lb, ub);
        }

        // Tighten the root box with activity-based bound propagation.
        // The propagated bounds are implied by the constraints, so no
        // integer-feasible point is cut; a propagation-time infeasibility
        // proof short-circuits the whole search.
        if self.root_propagation {
            let prop = crate::presolve::propagate_bounds(model)?;
            for (rb, &(pl, pu)) in root_bounds.iter_mut().zip(&prop.bounds) {
                rb.0 = rb.0.max(pl);
                rb.1 = rb.1.min(pu);
                if rb.0 > rb.1 {
                    return Err(SolveError::Infeasible);
                }
            }
        }

        let threads = self.effective_threads();
        if threads > 1 {
            // Worker-local engines make root-basis capture racy; the
            // parallel path ignores the carried basis and returns none.
            return parallel::solve(self, model, &int_vars, sign, root_bounds, threads)
                .map(|sol| (sol, None));
        }

        let mut node_lp = NodeLp::new(self, model, &root_bounds);
        let mut frontier = match self.node_selection {
            NodeSelection::BestBound => Frontier::Heap(BinaryHeap::new()),
            NodeSelection::DepthFirst => Frontier::Stack(Vec::new()),
        };
        frontier.push(Node {
            bounds: root_bounds,
            bound: f64::NEG_INFINITY,
            depth: 0,
            basis: root_basis.cloned(),
        });
        let mut root_basis_out: Option<BasisState> = None;

        let mut incumbent: Option<Solution> = None;
        let mut incumbent_key = f64::INFINITY;
        let mut nodes = 0usize;
        let mut lp_iterations = 0usize;
        let mut trace = SolveTrace::default();
        let obs_on = billcap_obs::enabled();
        let mut mip_span = billcap_obs::span("mip");

        while let Some(node) = frontier.pop() {
            if obs_on {
                billcap_obs::observe("milp.bnb.queue_depth", frontier.len() as f64);
            }
            // Global-bound prune (incumbent may have improved since push).
            if node.bound >= incumbent_key - self.prune_slack(incumbent_key) {
                trace.pruned_by_bound += 1;
                continue;
            }
            if nodes >= self.max_nodes {
                let sol =
                    self.finish_at_limit(incumbent, nodes, lp_iterations, sign, &frontier, trace);
                finish_obs(&mut mip_span, sol.as_ref().ok());
                return sol.map(|s| (s, root_basis_out));
            }
            nodes += 1;
            trace.max_depth = trace.max_depth.max(node.depth);

            // Only the root may carry an out-of-tree basis, so only the
            // root pays the dual-feasibility verification.
            let verify_warm = node.depth == 0;
            let lp_sol = match node_lp.solve(
                model,
                &node.bounds,
                node.basis.as_ref(),
                verify_warm,
                &mut trace,
            ) {
                Ok(s) => s,
                Err(SolveError::Infeasible) => {
                    trace.pruned_infeasible += 1;
                    continue;
                }
                Err(SolveError::Unbounded) => {
                    // The relaxation is unbounded; for the models produced in
                    // this workspace that implies the MILP is unbounded too.
                    return Err(SolveError::Unbounded);
                }
                Err(e) => return Err(e),
            };
            lp_iterations += lp_sol.iterations;
            trace.degenerate_pivots += lp_sol.degenerate;
            if node.depth == 0 {
                // The root relaxation's optimal basis is the warm-start
                // seed for the *next* solve of a mutated model.
                root_basis_out = lp_sol.basis.clone();
            }
            if obs_on {
                billcap_obs::observe("milp.lp.iterations_per_node", lp_sol.iterations as f64);
            }
            let node_key = sign * lp_sol.objective;
            if node_key >= incumbent_key - self.prune_slack(incumbent_key) {
                trace.pruned_by_bound += 1;
                continue; // bound prune
            }

            // Find branching variable.
            let frac = self.select_branch_var(&int_vars, &lp_sol.values);
            match frac {
                None => {
                    // Integer feasible: round off float noise and accept.
                    let mut values = lp_sol.values.clone();
                    for &v in &int_vars {
                        values[v.index()] = values[v.index()].round();
                    }
                    let objective = model.eval_objective(&values);
                    let key = sign * objective;
                    if key < incumbent_key {
                        incumbent_key = key;
                        trace.incumbent_updates += 1;
                        incumbent = Some(Solution {
                            status: Status::Optimal,
                            objective,
                            values,
                            iterations: lp_iterations,
                            degenerate: 0,
                            mip: None,
                            duals: None,
                        });
                    }
                }
                Some((v, x)) => {
                    let (lb, ub) = node.bounds[v.index()];
                    let down_ub = x.floor();
                    let up_lb = x.ceil();
                    if down_ub >= lb - self.int_tol {
                        let mut b = node.bounds.clone();
                        b[v.index()] = (lb, down_ub);
                        frontier.push(Node {
                            bounds: b,
                            bound: node_key,
                            depth: node.depth + 1,
                            basis: lp_sol.basis.clone(),
                        });
                    }
                    if up_lb <= ub + self.int_tol {
                        let mut b = node.bounds.clone();
                        b[v.index()] = (up_lb, ub);
                        frontier.push(Node {
                            bounds: b,
                            bound: node_key,
                            depth: node.depth + 1,
                            basis: lp_sol.basis,
                        });
                    }
                }
            }
            trace.max_frontier = trace.max_frontier.max(frontier.len());

            // Gap-based early stop (best-bound search keeps the frontier's
            // minimum as a valid global dual bound).
            if let (Some(inc), Some(fb)) = (&incumbent, frontier.best_bound()) {
                // Pruned-but-unpopped nodes can leave the frontier minimum
                // above the incumbent; the incumbent is itself a valid
                // dual bound, so clamp before reporting.
                let fb = fb.min(incumbent_key);
                let gap = (incumbent_key - fb) / incumbent_key.abs().max(1.0);
                if gap <= self.gap_tol {
                    let mut sol = inc.clone();
                    sol.iterations = lp_iterations;
                    sol.degenerate = trace.degenerate_pivots;
                    sol.mip = Some(MipStats {
                        nodes,
                        lp_iterations,
                        best_bound: sign * fb,
                        gap,
                        trace,
                    });
                    finish_obs(&mut mip_span, Some(&sol));
                    return Ok((sol, root_basis_out));
                }
            }
        }

        match incumbent {
            Some(mut sol) => {
                sol.iterations = lp_iterations;
                sol.degenerate = trace.degenerate_pivots;
                sol.mip = Some(MipStats {
                    nodes,
                    lp_iterations,
                    best_bound: sol.objective,
                    gap: 0.0,
                    trace,
                });
                finish_obs(&mut mip_span, Some(&sol));
                Ok((sol, root_basis_out))
            }
            None => Err(SolveError::Infeasible),
        }
    }

    /// A pure-LP solve (no integer variables): the revised simplex when
    /// the model is cold-startable, the dense two-phase solver otherwise
    /// — both return audited duals. A carried basis is tried first via
    /// the *verified* warm path (it crossed a model mutation, so dual
    /// feasibility must be re-proven); rejection costs the wasted pivots
    /// and falls through to a cold start.
    fn solve_pure_lp_warm(
        &self,
        model: &Model,
        warm: Option<&BasisState>,
    ) -> Result<(Solution, Option<BasisState>), SolveError> {
        if self.revised {
            let engine = RevisedEngine::new(model, RevisedOptions::default());
            if engine.cold_startable() {
                let from_revised = |r: crate::revised::RevisedSolution, wasted: usize| {
                    let basis = r.basis.clone();
                    (
                        Solution {
                            status: Status::Optimal,
                            objective: model.eval_objective(&r.values),
                            values: r.values,
                            iterations: wasted + r.stats.iterations,
                            degenerate: r.stats.degenerate,
                            mip: None,
                            duals: Some(r.duals),
                        },
                        Some(basis),
                    )
                };
                let mut wasted = 0usize;
                if let Some(bs) = warm.filter(|_| self.warm_start) {
                    match engine.solve_warm_verified(bs) {
                        Ok(r) => return Ok(from_revised(r, 0)),
                        // Dual-infeasible or numerically unusable carry-over;
                        // account for the probe and cold-start below.
                        Err(e) => wasted = e.stats().iterations,
                    }
                }
                match engine.solve(None) {
                    Ok(r) => return Ok(from_revised(r, wasted)),
                    Err(RevisedError::Infeasible { .. }) => return Err(SolveError::Infeasible),
                    // Numerical trouble or an iteration limit: the dense
                    // solve below is the authoritative answer.
                    Err(_) => {}
                }
            }
        }
        self.lp.solve(model).map(|sol| (sol, None))
    }

    /// Absolute slack used when pruning against the incumbent.
    fn prune_slack(&self, incumbent_key: f64) -> f64 {
        if incumbent_key.is_finite() {
            self.gap_tol * incumbent_key.abs().max(1.0)
        } else {
            0.0
        }
    }

    fn select_branch_var(&self, int_vars: &[VarId], values: &[f64]) -> Option<(VarId, f64)> {
        let mut best: Option<(VarId, f64, f64)> = None; // (var, value, score)
        for &v in int_vars {
            let x = values[v.index()];
            let frac = (x - x.round()).abs();
            if frac > self.int_tol {
                let score = (x - x.floor()).min(x.ceil() - x); // distance to nearest int
                match self.branch_rule {
                    BranchRule::FirstFractional => return Some((v, x)),
                    BranchRule::MostFractional => {
                        if best.is_none_or(|(_, _, s)| score > s) {
                            best = Some((v, x, score));
                        }
                    }
                }
            }
        }
        best.map(|(v, x, _)| (v, x))
    }

    fn finish_at_limit(
        &self,
        incumbent: Option<Solution>,
        nodes: usize,
        lp_iterations: usize,
        sign: f64,
        frontier: &Frontier,
        trace: SolveTrace,
    ) -> Result<Solution, SolveError> {
        match incumbent {
            Some(mut sol) => {
                sol.status = Status::Feasible;
                sol.iterations = lp_iterations;
                sol.degenerate = trace.degenerate_pivots;
                let bound_key = frontier
                    .best_bound()
                    .unwrap_or(sign * sol.objective)
                    .min(sign * sol.objective);
                let gap = (sign * sol.objective - bound_key).abs() / sol.objective.abs().max(1.0);
                sol.mip = Some(MipStats {
                    nodes,
                    lp_iterations,
                    best_bound: sign * bound_key,
                    gap,
                    trace,
                });
                Ok(sol)
            }
            None => Err(SolveError::NodeLimit { nodes }),
        }
    }
}

/// Writes a finished solve's counters to the global trace recorder and
/// stamps summary fields on the solve's span. No-op when tracing is off.
pub(crate) fn record_obs(stats: &MipStats) {
    if !billcap_obs::enabled() {
        return;
    }
    billcap_obs::counter("milp.bnb.solves", 1);
    billcap_obs::counter("milp.bnb.nodes", stats.nodes as u64);
    billcap_obs::counter("milp.lp.iterations", stats.lp_iterations as u64);
    billcap_obs::counter("milp.bnb.pruned_bound", stats.trace.pruned_by_bound as u64);
    billcap_obs::counter(
        "milp.bnb.pruned_infeasible",
        stats.trace.pruned_infeasible as u64,
    );
    billcap_obs::counter(
        "milp.bnb.incumbent_updates",
        stats.trace.incumbent_updates as u64,
    );
    billcap_obs::counter(
        "milp.lp.degenerate_pivots",
        stats.trace.degenerate_pivots as u64,
    );
    billcap_obs::counter("milp.lp.factorizations", stats.trace.factorizations as u64);
    billcap_obs::counter(
        "milp.lp.refactorizations",
        stats.trace.refactorizations as u64,
    );
    billcap_obs::counter("milp.lp.bound_flips", stats.trace.bound_flips as u64);
    billcap_obs::counter("milp.lp.warm_starts", stats.trace.warm_starts as u64);
}

/// Completes a solve's `mip` span: attaches the headline counters as
/// fields (when the span is live) and records the aggregate counters.
pub(crate) fn finish_obs(span: &mut billcap_obs::Span, sol: Option<&Solution>) {
    let Some(sol) = sol else { return };
    let Some(stats) = sol.mip.as_ref() else {
        return;
    };
    if span.is_enabled() {
        span.field("nodes", stats.nodes as f64);
        span.field("lp_iterations", stats.lp_iterations as f64);
        span.field("incumbents", stats.trace.incumbent_updates as f64);
        span.field("max_depth", stats.trace.max_depth as f64);
    }
    record_obs(stats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense, VarType};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c  s.t. 3a + 4b + 2c <= 6, binary.
        // best: a + c? 3+2=5 w=17; b+c: 4+2=6 w=20. => 20
        let mut m = Model::new("knap", Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint(
            "w",
            vec![(a, 3.0), (b, 4.0), (c, 2.0)],
            ConstraintOp::Le,
            6.0,
        );
        m.set_objective(vec![(a, 10.0), (b, 13.0), (c, 7.0)], 0.0);
        let s = MipSolver::default().solve(&m).unwrap();
        assert_close(s.objective, 20.0);
        assert_eq!(s.int_value(b), 1);
        assert_eq!(s.int_value(c), 1);
        assert_eq!(s.int_value(a), 0);
    }

    #[test]
    fn pure_lp_passthrough() {
        let mut m = Model::new("lp", Sense::Minimize);
        let x = m.add_cont("x", 2.0, 8.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let s = MipSolver::default().solve(&m).unwrap();
        assert_close(s.objective, 2.0);
        assert!(s.mip.is_some());
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 5, integer: LP gives 2.5, MIP gives 2.
        let mut m = Model::new("round", Sense::Maximize);
        let x = m.add_var("x", VarType::Integer, 0.0, 10.0);
        let y = m.add_var("y", VarType::Integer, 0.0, 10.0);
        m.add_constraint("c", vec![(x, 2.0), (y, 2.0)], ConstraintOp::Le, 5.0);
        m.set_objective(vec![(x, 1.0), (y, 1.0)], 0.0);
        let s = MipSolver::default().solve(&m).unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 <= x <= 0.6, x integer: no integer in range.
        let mut m = Model::new("noint", Sense::Minimize);
        let x = m.add_var("x", VarType::Integer, 0.4, 0.6);
        m.set_objective(vec![(x, 1.0)], 0.0);
        assert_eq!(MipSolver::default().solve(&m), Err(SolveError::Infeasible));
    }

    #[test]
    fn depth_first_matches_best_bound() {
        let mut m = Model::new("dfs", Sense::Maximize);
        let items: Vec<_> = (0..8).map(|i| m.add_binary(format!("x{i}"))).collect();
        let weights = [5.0, 7.0, 4.0, 3.0, 8.0, 6.0, 5.0, 9.0];
        let values = [10.0, 13.0, 7.0, 5.0, 16.0, 11.0, 8.0, 17.0];
        m.add_constraint(
            "w",
            items.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
            ConstraintOp::Le,
            20.0,
        );
        m.set_objective(
            items.iter().zip(values).map(|(&v, c)| (v, c)).collect(),
            0.0,
        );
        let best = MipSolver::default().solve(&m).unwrap();
        let dfs = MipSolver {
            node_selection: NodeSelection::DepthFirst,
            branch_rule: BranchRule::FirstFractional,
            ..Default::default()
        };
        let s2 = dfs.solve(&m).unwrap();
        assert_close(best.objective, s2.objective);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 4n + x  s.t. n >= 2.3 (integer), x >= 1.5 - fractional part covered by x
        // n integer >= 2.3 -> n = 3; x >= 0. obj = 12.
        let mut m = Model::new("mix", Sense::Minimize);
        let n = m.add_var("n", VarType::Integer, 0.0, 100.0);
        let x = m.add_cont("x", 0.0, 100.0);
        m.add_constraint("c1", vec![(n, 1.0)], ConstraintOp::Ge, 2.3);
        m.add_constraint("c2", vec![(x, 1.0), (n, 1.0)], ConstraintOp::Ge, 3.5);
        m.set_objective(vec![(n, 4.0), (x, 1.0)], 0.0);
        let s = MipSolver::default().solve(&m).unwrap();
        assert_close(s.objective, 12.5); // n = 3, x = 0.5
        assert_eq!(s.int_value(n), 3);
    }

    #[test]
    fn node_limit_reports_error_without_incumbent() {
        let mut m = Model::new("lim", Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|i| m.add_binary(format!("x{i}"))).collect();
        // Equality that is hard to satisfy immediately.
        m.add_constraint(
            "c",
            vars.iter().map(|&v| (v, 7.0)).collect(),
            ConstraintOp::Eq,
            35.0,
        );
        m.set_objective(vars.iter().map(|&v| (v, 1.0)).collect(), 0.0);
        let solver = MipSolver {
            max_nodes: 1,
            ..Default::default()
        };
        // With a single node we either find an incumbent (possibly even a
        // proven optimum if the root LP lands on an integer vertex) or get
        // the limit error; all are acceptable terminations, never a hang.
        match solver.solve(&m) {
            Ok(s) => assert!(m.is_feasible(&s.values, 1e-6)),
            Err(SolveError::NodeLimit { nodes }) => assert_eq!(nodes, 1),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn stats_are_populated() {
        let mut m = Model::new("stats", Sense::Maximize);
        let x = m.add_var("x", VarType::Integer, 0.0, 10.0);
        m.add_constraint("c", vec![(x, 3.0)], ConstraintOp::Le, 10.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let s = MipSolver::default().solve(&m).unwrap();
        let stats = s.mip.unwrap();
        assert!(stats.nodes >= 1);
        assert!(stats.gap <= 1e-9);
        assert_close(s.objective, 3.0);
    }

    /// Builds a knapsack-like random integer program with `n` variables.
    fn random_ip(rng: &mut billcap_rt::Xoshiro256pp, n: usize) -> Model {
        use billcap_rt::Rng;
        let mut m = Model::new("rand", Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("x{i}"), VarType::Integer, 0.0, 3.0))
            .collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.random_i64_in(1, 9) as f64).collect();
        let values: Vec<f64> = (0..n).map(|_| rng.random_i64_in(1, 19) as f64).collect();
        let cap = weights.iter().sum::<f64>() * 0.45;
        m.add_constraint(
            "w",
            vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect(),
            ConstraintOp::Le,
            cap,
        );
        // A second coupling row so relaxations stay fractional.
        m.add_constraint(
            "c",
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 3) as f64))
                .collect(),
            ConstraintOp::Le,
            2.0 * n as f64,
        );
        m.set_objective(
            vars.iter().zip(&values).map(|(&v, &c)| (v, c)).collect(),
            0.0,
        );
        m
    }

    #[test]
    fn parallel_matches_sequential_on_knapsack() {
        let mut m = Model::new("knap", Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint(
            "w",
            vec![(a, 3.0), (b, 4.0), (c, 2.0)],
            ConstraintOp::Le,
            6.0,
        );
        m.set_objective(vec![(a, 10.0), (b, 13.0), (c, 7.0)], 0.0);
        let par = MipSolver {
            threads: 8,
            ..Default::default()
        };
        let s = par.solve(&m).unwrap();
        assert_eq!(s.objective, 20.0);
        assert_eq!(s.int_value(b), 1);
        assert_eq!(s.int_value(c), 1);
    }

    #[test]
    fn parallel_matches_sequential_on_random_ips() {
        let mut rng = billcap_rt::Xoshiro256pp::seed_from_u64(0xB4B);
        let seq = MipSolver::default();
        let par = MipSolver {
            threads: 8,
            ..Default::default()
        };
        for round in 0..20 {
            let m = random_ip(&mut rng, 4 + round % 5);
            let a = seq.solve(&m).unwrap();
            let b = par.solve(&m).unwrap();
            assert_eq!(
                a.objective, b.objective,
                "round {round}: sequential {} vs parallel {}",
                a.objective, b.objective
            );
            assert!(m.is_feasible(&b.values, 1e-6), "round {round}");
        }
    }

    #[test]
    fn parallel_handles_infeasible_and_node_limit() {
        // Infeasible integrality window.
        let mut m = Model::new("noint", Sense::Minimize);
        let x = m.add_var("x", VarType::Integer, 0.4, 0.6);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let par = MipSolver {
            threads: 4,
            ..Default::default()
        };
        assert_eq!(par.solve(&m), Err(SolveError::Infeasible));

        // Tiny node budget still terminates (feasible or limit error).
        let mut m = Model::new("lim", Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.add_constraint(
            "c",
            vars.iter().map(|&v| (v, 7.0)).collect(),
            ConstraintOp::Eq,
            35.0,
        );
        m.set_objective(vars.iter().map(|&v| (v, 1.0)).collect(), 0.0);
        let par = MipSolver {
            threads: 4,
            max_nodes: 2,
            ..Default::default()
        };
        match par.solve(&m) {
            Ok(s) => assert!(m.is_feasible(&s.values, 1e-6)),
            Err(SolveError::NodeLimit { nodes }) => assert!(nodes <= 2 + 4),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn parallel_pure_lp_passthrough() {
        let mut m = Model::new("lp", Sense::Minimize);
        let x = m.add_cont("x", 2.0, 8.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let s = MipSolver::parallel().solve(&m).unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn binary_equality_partition() {
        // Exactly 2 of 4 binaries, minimize weighted sum.
        let mut m = Model::new("part", Sense::Minimize);
        let xs: Vec<_> = (0..4).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.add_constraint(
            "sum",
            xs.iter().map(|&v| (v, 1.0)).collect(),
            ConstraintOp::Eq,
            2.0,
        );
        m.set_objective(
            xs.iter()
                .zip([5.0, 1.0, 3.0, 2.0])
                .map(|(&v, c)| (v, c))
                .collect(),
            0.0,
        );
        let s = MipSolver::default().solve(&m).unwrap();
        assert_close(s.objective, 3.0); // picks weights 1 and 2
        assert_eq!(s.int_value(xs[1]), 1);
        assert_eq!(s.int_value(xs[3]), 1);
    }
}
