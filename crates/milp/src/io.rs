//! CPLEX LP-format serialization.
//!
//! `lp_solve` users inspect models as text; this module provides the same
//! workflow for `billcap-milp`: [`write_lp`] renders a [`Model`] in the
//! (widely supported) CPLEX LP format and [`parse_lp`] reads the subset
//! this crate writes, so models round-trip exactly and can be checked
//! against external solvers.
//!
//! Supported subset: a single linear objective, linear constraints with
//! `<=`, `>=`, `=`, a `Bounds` section (including `free` and one- or
//! two-sided bounds), and `General`/`Binary` integrality sections.

use crate::error::SolveError;
use crate::model::{ConstraintOp, Model, Sense, VarId, VarType};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Renders a model in CPLEX LP format.
pub fn write_lp(model: &Model) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\\ Problem: {}", model.name);
    out.push_str(match model.sense {
        Sense::Minimize => "Minimize\n",
        Sense::Maximize => "Maximize\n",
    });
    out.push_str(" obj:");
    if model.objective().is_empty() && model.objective_constant() == 0.0 {
        out.push_str(" 0");
    } else {
        write_terms(&mut out, model, model.objective());
        if model.objective_constant() != 0.0 {
            let _ = write!(out, " {:+}", model.objective_constant());
        }
    }
    out.push('\n');

    out.push_str("Subject To\n");
    for (i, c) in model.constraints().iter().enumerate() {
        let name = sanitize(&c.name, &format!("c{i}"));
        let _ = write!(out, " {name}:");
        if c.terms.is_empty() {
            out.push_str(" 0");
        } else {
            write_terms(&mut out, model, &c.terms);
        }
        let op = match c.op {
            ConstraintOp::Le => "<=",
            ConstraintOp::Ge => ">=",
            ConstraintOp::Eq => "=",
        };
        let _ = writeln!(out, " {op} {}", fmt_num(c.rhs));
    }

    out.push_str("Bounds\n");
    for (i, v) in model.variables().iter().enumerate() {
        let name = var_name(model, VarId(i));
        match (v.lb.is_finite(), v.ub.is_finite()) {
            (true, true) => {
                let _ = writeln!(out, " {} <= {name} <= {}", fmt_num(v.lb), fmt_num(v.ub));
            }
            (true, false) => {
                let _ = writeln!(out, " {name} >= {}", fmt_num(v.lb));
            }
            (false, true) => {
                let _ = writeln!(out, " -inf <= {name} <= {}", fmt_num(v.ub));
            }
            (false, false) => {
                let _ = writeln!(out, " {name} free");
            }
        }
    }

    let generals: Vec<String> = model
        .variables()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.var_type == VarType::Integer)
        .map(|(i, _)| var_name(model, VarId(i)))
        .collect();
    if !generals.is_empty() {
        out.push_str("General\n");
        for g in generals {
            let _ = writeln!(out, " {g}");
        }
    }
    let binaries: Vec<String> = model
        .variables()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.var_type == VarType::Binary)
        .map(|(i, _)| var_name(model, VarId(i)))
        .collect();
    if !binaries.is_empty() {
        out.push_str("Binary\n");
        for b in binaries {
            let _ = writeln!(out, " {b}");
        }
    }
    out.push_str("End\n");
    out
}

/// Parses the LP subset produced by [`write_lp`].
pub fn parse_lp(text: &str) -> Result<Model, SolveError> {
    #[derive(PartialEq)]
    enum Section {
        Preamble,
        Objective,
        Constraints,
        Bounds,
        General,
        Binary,
        End,
    }
    let mut section = Section::Preamble;
    let mut sense = Sense::Minimize;
    let mut name = "parsed".to_string();
    // Collected as text first: variables are declared implicitly by use.
    let mut obj_line = String::new();
    let mut constraint_lines: Vec<String> = Vec::new();
    let mut bound_lines: Vec<String> = Vec::new();
    let mut general_names: Vec<String> = Vec::new();
    let mut binary_names: Vec<String> = Vec::new();

    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('\\') {
            if let Some(n) = rest.trim().strip_prefix("Problem:") {
                name = n.trim().to_string();
            }
            continue;
        }
        let lower = line.to_ascii_lowercase();
        match lower.as_str() {
            "minimize" | "min" => {
                sense = Sense::Minimize;
                section = Section::Objective;
                continue;
            }
            "maximize" | "max" => {
                sense = Sense::Maximize;
                section = Section::Objective;
                continue;
            }
            "subject to" | "st" | "s.t." => {
                section = Section::Constraints;
                continue;
            }
            "bounds" => {
                section = Section::Bounds;
                continue;
            }
            "general" | "generals" | "gen" => {
                section = Section::General;
                continue;
            }
            "binary" | "binaries" | "bin" => {
                section = Section::Binary;
                continue;
            }
            "end" => {
                section = Section::End;
                continue;
            }
            _ => {}
        }
        match section {
            Section::Objective => {
                obj_line.push(' ');
                obj_line.push_str(line);
            }
            Section::Constraints => constraint_lines.push(line.to_string()),
            Section::Bounds => bound_lines.push(line.to_string()),
            Section::General => general_names.push(line.to_string()),
            Section::Binary => binary_names.push(line.to_string()),
            Section::Preamble | Section::End => {
                return Err(SolveError::InvalidModel(format!(
                    "unexpected content outside sections: {line:?}"
                )))
            }
        }
    }

    // First pass: discover variable names in order of first appearance.
    let mut var_order: Vec<String> = Vec::new();
    let mut var_index: HashMap<String, usize> = HashMap::new();
    let mut discover = |expr: &str| {
        for token in expr.split_whitespace() {
            let t = token.trim_matches(|c: char| c == '+' || c == '-');
            if t.is_empty() || t.parse::<f64>().is_ok() {
                continue;
            }
            if is_ident(t) && !var_index.contains_key(t) {
                var_index.insert(t.to_string(), var_order.len());
                var_order.push(t.to_string());
            }
        }
    };
    let obj_expr = obj_line
        .split_once(':')
        .map(|(_, e)| e.to_string())
        .unwrap_or_else(|| obj_line.clone());
    discover(&strip_relation(&obj_expr).0);
    for line in &constraint_lines {
        let body = line
            .split_once(':')
            .map(|(_, e)| e.to_string())
            .unwrap_or_else(|| line.clone());
        discover(&strip_relation(&body).0);
    }

    let mut model = Model::new(name, sense);
    let mut ids: HashMap<String, VarId> = HashMap::new();
    for vname in &var_order {
        let vt = if binary_names.iter().any(|b| b == vname) {
            VarType::Binary
        } else if general_names.iter().any(|g| g == vname) {
            VarType::Integer
        } else {
            VarType::Continuous
        };
        // LP-format default bounds: [0, +inf).
        let id = model.add_var(vname.clone(), vt, 0.0, f64::INFINITY);
        ids.insert(vname.clone(), id);
    }

    // Objective.
    let (expr, _, _) = strip_relation(&obj_expr);
    let (terms, constant) = parse_expr(&expr, &ids)?;
    model.set_objective(terms, constant);

    // Constraints.
    for line in &constraint_lines {
        let (cname, body) = match line.split_once(':') {
            Some((n, b)) => (n.trim().to_string(), b.to_string()),
            None => (format!("c{}", model.num_constraints()), line.clone()),
        };
        let (expr, op, rhs) = strip_relation(&body);
        let op = op.ok_or_else(|| {
            SolveError::InvalidModel(format!("constraint without relation: {line:?}"))
        })?;
        let rhs: f64 = rhs
            .trim()
            .parse()
            .map_err(|e| SolveError::InvalidModel(format!("bad rhs in {line:?}: {e}")))?;
        let (terms, constant) = parse_expr(&expr, &ids)?;
        model.add_constraint(cname, terms, op, rhs - constant);
    }

    // Bounds.
    for line in &bound_lines {
        apply_bound_line(&mut model, &ids, line)?;
    }
    // Binary bounds are implied.
    for b in &binary_names {
        if let Some(&id) = ids.get(b) {
            model.set_var_bounds(id, 0.0, 1.0);
        }
    }

    model.validate()?;
    Ok(model)
}

fn write_terms(out: &mut String, model: &Model, terms: &[(VarId, f64)]) {
    for &(v, coeff) in terms {
        let name = var_name(model, v);
        if coeff >= 0.0 {
            let _ = write!(out, " + {} {name}", fmt_num(coeff));
        } else {
            let _ = write!(out, " - {} {name}", fmt_num(-coeff));
        }
    }
}

fn var_name(model: &Model, v: VarId) -> String {
    sanitize(
        &model.variables()[v.index()].name,
        &format!("x{}", v.index()),
    )
}

/// LP-format identifiers cannot contain spaces or operators; fall back to
/// a positional name when the model's name is unusable.
fn sanitize(name: &str, fallback: &str) -> String {
    if !name.is_empty() && is_ident(name) {
        name.to_string()
    } else {
        fallback.to_string()
    }
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    s.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-')
        && !s.eq_ignore_ascii_case("free")
}

fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x}")
    } else {
        format!("{x:?}")
    }
}

/// Splits `lhs REL rhs`; returns `(lhs, Some(op), rhs)` or the whole text
/// with no relation.
fn strip_relation(s: &str) -> (String, Option<ConstraintOp>, String) {
    for (pat, op) in [
        ("<=", ConstraintOp::Le),
        (">=", ConstraintOp::Ge),
        ("=<", ConstraintOp::Le),
        ("=>", ConstraintOp::Ge),
        ("=", ConstraintOp::Eq),
    ] {
        if let Some(pos) = s.find(pat) {
            let lhs = s[..pos].to_string();
            let rhs = s[pos + pat.len()..].to_string();
            return (lhs, Some(op), rhs);
        }
    }
    (s.to_string(), None, String::new())
}

/// Parses `+ 3 x - y + 2.5` style expressions into terms + constant.
fn parse_expr(
    expr: &str,
    ids: &HashMap<String, VarId>,
) -> Result<(Vec<(VarId, f64)>, f64), SolveError> {
    let mut terms: Vec<(VarId, f64)> = Vec::new();
    let mut constant = 0.0;
    let mut sign = 1.0;
    let mut pending: Option<f64> = None;
    for token in expr.split_whitespace() {
        match token {
            "+" => {
                flush(&mut pending, &mut constant, sign);
                sign = 1.0;
            }
            "-" => {
                flush(&mut pending, &mut constant, sign);
                sign = -1.0;
            }
            _ => {
                // Leading sign glued to the token.
                let (tok_sign, tok) = match token.strip_prefix('-') {
                    Some(rest) => (-1.0, rest),
                    None => (1.0, token.strip_prefix('+').unwrap_or(token)),
                };
                if let Ok(num) = tok.parse::<f64>() {
                    flush(&mut pending, &mut constant, sign);
                    pending = Some(tok_sign * num);
                } else if let Some(&id) = ids.get(tok) {
                    let coeff = sign * tok_sign * pending.take().unwrap_or(1.0);
                    terms.push((id, coeff));
                    sign = 1.0;
                } else if tok.is_empty() {
                    continue;
                } else {
                    return Err(SolveError::InvalidModel(format!(
                        "unknown token {token:?} in expression"
                    )));
                }
            }
        }
    }
    flush(&mut pending, &mut constant, sign);
    // Merge duplicate variables.
    let mut merged: Vec<(VarId, f64)> = Vec::new();
    for (v, c) in terms {
        if let Some(e) = merged.iter_mut().find(|(mv, _)| *mv == v) {
            e.1 += c;
        } else {
            merged.push((v, c));
        }
    }
    Ok((merged, constant))
}

fn flush(pending: &mut Option<f64>, constant: &mut f64, sign: f64) {
    if let Some(num) = pending.take() {
        *constant += sign * num;
    }
}

fn apply_bound_line(
    model: &mut Model,
    ids: &HashMap<String, VarId>,
    line: &str,
) -> Result<(), SolveError> {
    let lower = line.to_ascii_lowercase();
    if let Some(pos) = lower.find(" free") {
        let vname = line[..pos].trim();
        let &id = ids
            .get(vname)
            .ok_or_else(|| SolveError::InvalidModel(format!("unknown variable {vname:?}")))?;
        model.set_var_bounds(id, f64::NEG_INFINITY, f64::INFINITY);
        return Ok(());
    }
    let parts: Vec<&str> = line.split("<=").map(str::trim).collect();
    match parts.as_slice() {
        // lo <= x <= hi
        [lo, mid, hi] => {
            let &id = ids
                .get(*mid)
                .ok_or_else(|| SolveError::InvalidModel(format!("unknown variable {mid:?}")))?;
            let lo = parse_bound(lo)?;
            let hi = parse_bound(hi)?;
            model.set_var_bounds(id, lo, hi);
            Ok(())
        }
        // x <= hi
        [name, hi] => {
            let &id = ids
                .get(*name)
                .ok_or_else(|| SolveError::InvalidModel(format!("unknown variable {name:?}")))?;
            let hi = parse_bound(hi)?;
            let lb = model.variables()[id.index()].lb;
            model.set_var_bounds(id, lb, hi);
            Ok(())
        }
        _ => {
            // x >= lo
            if let Some((name, lo)) = line.split_once(">=") {
                let name = name.trim();
                let &id = ids.get(name).ok_or_else(|| {
                    SolveError::InvalidModel(format!("unknown variable {name:?}"))
                })?;
                let lo = parse_bound(lo.trim())?;
                let ub = model.variables()[id.index()].ub;
                model.set_var_bounds(id, lo, ub);
                Ok(())
            } else {
                Err(SolveError::InvalidModel(format!(
                    "unparseable bound line: {line:?}"
                )))
            }
        }
    }
}

fn parse_bound(s: &str) -> Result<f64, SolveError> {
    match s.to_ascii_lowercase().as_str() {
        "-inf" | "-infinity" => Ok(f64::NEG_INFINITY),
        "inf" | "+inf" | "infinity" | "+infinity" => Ok(f64::INFINITY),
        other => other
            .parse()
            .map_err(|e| SolveError::InvalidModel(format!("bad bound {s:?}: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::LpSolver;
    use crate::MipSolver;

    fn sample_model() -> Model {
        let mut m = Model::new("sample", Sense::Maximize);
        let x = m.add_cont("x", 0.0, 4.0);
        let y = m.add_var("y", VarType::Integer, 0.0, f64::INFINITY);
        let z = m.add_binary("z");
        let w = m.add_cont("w", f64::NEG_INFINITY, f64::INFINITY);
        m.add_constraint(
            "cap",
            vec![(x, 1.0), (y, 2.0), (z, -1.5)],
            ConstraintOp::Le,
            10.0,
        );
        m.add_constraint("tie", vec![(x, 1.0), (w, -1.0)], ConstraintOp::Eq, 0.0);
        m.add_constraint("floor", vec![(y, 1.0), (w, 0.5)], ConstraintOp::Ge, 1.0);
        m.set_objective(vec![(x, 3.0), (y, 2.0), (z, 1.0), (w, -0.5)], 4.0);
        m
    }

    #[test]
    fn writes_all_sections() {
        let lp = write_lp(&sample_model());
        for needle in [
            "Maximize",
            "Subject To",
            "Bounds",
            "General",
            "Binary",
            "End",
            "w free",
        ] {
            assert!(lp.contains(needle), "missing {needle} in:\n{lp}");
        }
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let m = sample_model();
        let parsed = parse_lp(&write_lp(&m)).unwrap();
        assert_eq!(parsed.sense, m.sense);
        assert_eq!(parsed.num_vars(), m.num_vars());
        assert_eq!(parsed.num_constraints(), m.num_constraints());
        for (a, b) in m.variables().iter().zip(parsed.variables()) {
            assert_eq!(a.var_type, b.var_type, "{}", a.name);
            assert_eq!(a.lb, b.lb, "{}", a.name);
            assert_eq!(a.ub, b.ub, "{}", a.name);
        }
    }

    #[test]
    fn roundtrip_preserves_optimum() {
        let m = sample_model();
        let parsed = parse_lp(&write_lp(&m)).unwrap();
        let a = MipSolver::default().solve(&m).unwrap();
        let b = MipSolver::default().solve(&parsed).unwrap();
        assert!(
            (a.objective - b.objective).abs() < 1e-9,
            "{} vs {}",
            a.objective,
            b.objective
        );
    }

    #[test]
    fn parses_handwritten_lp() {
        let text = "\
\\ Problem: hand
Minimize
 obj: 2 a + 3 b
Subject To
 c1: a + b >= 4
Bounds
 a >= 0
 b >= 0
End
";
        let m = parse_lp(text).unwrap();
        let s = LpSolver::default().solve(&m).unwrap();
        assert!((s.objective - 8.0).abs() < 1e-9);
    }

    #[test]
    fn objective_constant_roundtrips() {
        let mut m = Model::new("k", Sense::Minimize);
        let x = m.add_cont("x", 1.0, 5.0);
        m.set_objective(vec![(x, 1.0)], 100.0);
        let parsed = parse_lp(&write_lp(&m)).unwrap();
        let s = LpSolver::default().solve(&parsed).unwrap();
        assert!((s.objective - 101.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_lp("this is not an lp").is_err());
        // An operator token that is neither a number nor a known variable.
        assert!(parse_lp("Minimize\n obj: 2 ** x\nEnd\n").is_err());
        // A constraint with no relation.
        assert!(parse_lp("Minimize\n obj: 0\nSubject To\n c: 1 2 3\nEnd\n").is_err());
    }

    #[test]
    fn unnamed_constraint_gets_positional_name() {
        let mut m = Model::new("n", Sense::Minimize);
        let x = m.add_cont("x with spaces", 0.0, 1.0);
        m.add_constraint("name with spaces", vec![(x, 1.0)], ConstraintOp::Le, 1.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let lp = write_lp(&m);
        assert!(lp.contains("x0"), "{lp}");
        assert!(lp.contains("c0:"), "{lp}");
        // And the sanitized form still parses.
        parse_lp(&lp).unwrap();
    }
}
