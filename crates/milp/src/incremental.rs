//! Build-once / mutate-between-solves model reuse.
//!
//! The bill-capping decision loop solves the *same shaped* MILP every
//! hour: the variables, constraint rows and sparsity pattern are fixed
//! by the data-center spec, while the numbers (demand RHS, budget RHS,
//! level-power coefficients, prices) change with the hour. Rebuilding
//! the [`Model`] from scratch per decision wastes most of the solve
//! budget at bill-capping sizes; this module keeps one model alive and
//! rewrites only values between solves.
//!
//! Two layers:
//!
//! * [`IncrementalModel`] wraps a [`Model`] with a row-name index and a
//!   *structural hash* — a fingerprint of everything value-only
//!   mutation cannot change (sense, variable names/integrality,
//!   constraint names/operators/term patterns, objective term pattern).
//!   The mutators it exposes are exactly the value-only ones, so the
//!   hash is computed once and stays valid for the model's lifetime.
//! * [`IncrementalSolver`] drives [`MipSolver::solve_with_root_basis`],
//!   optionally carrying the root relaxation's optimal basis from one
//!   solve to the next. The basis is only replayed when the structural
//!   hash matches the solve that produced it, and the root warm start
//!   re-proves dual feasibility (see
//!   [`RevisedEngine::solve_warm_verified`]) — a stale or hostile basis
//!   costs a cold start, never a wrong answer.
//!
//! Basis reuse is **off by default**: with alternative optima a warm
//! root can terminate on a different optimal basis than a cold solve,
//! which perturbs values in the last ulp. Callers that need decisions
//! bitwise-identical to a fresh build (the serve daemon's differential
//! guarantee) keep it off and still skip the model rebuild; callers
//! that only need optimal objectives opt in for the extra speed.
//!
//! [`RevisedEngine::solve_warm_verified`]: crate::revised::RevisedEngine::solve_warm_verified

use crate::branch::MipSolver;
use crate::error::SolveError;
use crate::model::{ConstraintOp, Model, Sense, VarId, VarType};
use crate::revised::BasisState;
use crate::solution::Solution;
use std::collections::HashMap;

/// 64-bit FNV-1a, the workspace's zero-dep fingerprint hash.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_str(&mut self, s: &str) {
        // Length-prefixed so ("ab","c") and ("a","bc") hash apart.
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }
}

fn op_tag(op: ConstraintOp) -> u64 {
    match op {
        ConstraintOp::Le => 0,
        ConstraintOp::Ge => 1,
        ConstraintOp::Eq => 2,
    }
}

fn var_type_tag(t: VarType) -> u64 {
    match t {
        VarType::Continuous => 0,
        VarType::Integer => 1,
        VarType::Binary => 2,
    }
}

/// Fingerprint of a model's *structure*: everything the value-only
/// mutators cannot change. Two models with equal hashes have identical
/// variable lists (names + integrality), constraint skeletons (names,
/// operators, term variable patterns) and objective term patterns —
/// so a basis, row index or solver symbolic state computed for one is
/// shape-compatible with the other.
pub fn structural_hash(model: &Model) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(match model.sense {
        Sense::Minimize => 0,
        Sense::Maximize => 1,
    });
    h.write_u64(model.num_vars() as u64);
    for v in model.variables() {
        h.write_str(&v.name);
        h.write_u64(var_type_tag(v.var_type));
    }
    h.write_u64(model.num_constraints() as u64);
    for c in model.constraints() {
        h.write_str(&c.name);
        h.write_u64(op_tag(c.op));
        h.write_u64(c.terms.len() as u64);
        for &(v, _) in &c.terms {
            h.write_u64(v.index() as u64);
        }
    }
    h.write_u64(model.objective().len() as u64);
    for &(v, _) in model.objective() {
        h.write_u64(v.index() as u64);
    }
    h.0
}

/// A [`Model`] frozen in shape, open in values.
///
/// Construction validates the model and indexes constraint rows by
/// name; afterwards only the value-only mutators are reachable, so the
/// [`structural_hash`](Self::structural_hash) computed here never goes
/// stale.
#[derive(Debug, Clone)]
pub struct IncrementalModel {
    model: Model,
    rows: HashMap<String, usize>,
    hash: u64,
}

impl IncrementalModel {
    /// Wraps a built model. Errors if the model fails
    /// [`Model::validate`] or two constraints share a name (the row
    /// index would be ambiguous).
    pub fn new(model: Model) -> Result<Self, SolveError> {
        model.validate()?;
        let mut rows = HashMap::with_capacity(model.num_constraints());
        for (i, c) in model.constraints().iter().enumerate() {
            if rows.insert(c.name.clone(), i).is_some() {
                return Err(SolveError::InvalidModel(format!(
                    "duplicate constraint name '{}'",
                    c.name
                )));
            }
        }
        let hash = structural_hash(&model);
        Ok(Self { model, rows, hash })
    }

    /// The wrapped model (read-only; mutate through the methods below).
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The structure fingerprint (see [`structural_hash`]).
    pub fn structural_hash(&self) -> u64 {
        self.hash
    }

    /// Index of the named constraint row.
    pub fn row(&self, name: &str) -> Option<usize> {
        self.rows.get(name).copied()
    }

    fn row_index(&self, name: &str) -> Result<usize, SolveError> {
        self.row(name)
            .ok_or_else(|| SolveError::InvalidModel(format!("no constraint named '{name}'")))
    }

    /// Replaces the right-hand side of the named row.
    pub fn set_rhs(&mut self, row: &str, rhs: f64) -> Result<(), SolveError> {
        if !rhs.is_finite() {
            return Err(SolveError::InvalidModel(format!(
                "non-finite rhs {rhs} for row '{row}'"
            )));
        }
        let idx = self.row_index(row)?;
        self.model.set_constraint_rhs(idx, rhs)
    }

    /// Replaces the coefficient of `v` in the named row. The term must
    /// already exist — value-only mutation cannot add nonzeros.
    pub fn set_coeff(&mut self, row: &str, v: VarId, coeff: f64) -> Result<(), SolveError> {
        if !coeff.is_finite() {
            return Err(SolveError::InvalidModel(format!(
                "non-finite coefficient {coeff} for row '{row}'"
            )));
        }
        let idx = self.row_index(row)?;
        self.model.set_constraint_coeff(idx, v, coeff)
    }

    /// [`Self::set_coeff`] by row index (see [`Self::row`]) — the
    /// hot-loop variant that skips the name lookup. Same contract: the
    /// term must already exist.
    pub fn set_coeff_at(&mut self, idx: usize, v: VarId, coeff: f64) -> Result<(), SolveError> {
        if !coeff.is_finite() {
            return Err(SolveError::InvalidModel(format!(
                "non-finite coefficient {coeff} for row #{idx}"
            )));
        }
        self.model.set_constraint_coeff(idx, v, coeff)
    }

    /// Replaces the objective coefficient of `v` (term must exist).
    pub fn set_objective_coeff(&mut self, v: VarId, coeff: f64) -> Result<(), SolveError> {
        if !coeff.is_finite() {
            return Err(SolveError::InvalidModel(format!(
                "non-finite objective coefficient {coeff}"
            )));
        }
        self.model.set_objective_coeff(v, coeff)
    }

    /// Replaces the bounds of `v`. Bounds are values, not structure:
    /// the revised engine already treats them as per-solve state.
    pub fn set_var_bounds(&mut self, v: VarId, lb: f64, ub: f64) -> Result<(), SolveError> {
        if lb.is_nan() || ub.is_nan() || lb > ub {
            return Err(SolveError::InvalidModel(format!(
                "invalid bounds [{lb}, {ub}] for variable #{}",
                v.index()
            )));
        }
        self.model.set_var_bounds(v, lb, ub);
        Ok(())
    }
}

/// A [`MipSolver`] plus the cross-solve warm-start state for one
/// recurring model shape.
///
/// With [`reuse_basis`](Self::reuse_basis) off (the default) this is a
/// thin wrapper whose solves are bitwise-identical to
/// [`MipSolver::solve`] on the same model values — the savings come
/// purely from not rebuilding the model. With it on, each solve seeds
/// the root relaxation from the previous solve's root-optimal basis
/// (verified for dual feasibility, cold-started on rejection) and the
/// optimum is unchanged, though tie-breaking among alternative optima
/// may differ in the last ulp.
#[derive(Debug, Clone)]
pub struct IncrementalSolver {
    /// The underlying branch-and-bound solver.
    pub solver: MipSolver,
    /// Carry the root basis across solves. Off by default; see above.
    pub reuse_basis: bool,
    basis: Option<BasisState>,
    hash: Option<u64>,
}

impl IncrementalSolver {
    /// Wraps `solver` with basis reuse off.
    pub fn new(solver: MipSolver) -> Self {
        Self {
            solver,
            reuse_basis: false,
            basis: None,
            hash: None,
        }
    }

    /// Solves the current values of `im`, managing the carried basis.
    ///
    /// The stored basis is replayed only when `im`'s structural hash
    /// matches the solve that produced it; on mismatch (the caller
    /// switched to a differently shaped model) it is dropped rather
    /// than risk feeding the engine a shape-incompatible status vector.
    pub fn solve(&mut self, im: &IncrementalModel) -> Result<Solution, SolveError> {
        if !self.reuse_basis {
            return self.solver.solve(im.model());
        }
        if self.hash != Some(im.structural_hash()) {
            self.basis = None;
        }
        let (sol, basis) = self
            .solver
            .solve_with_root_basis(im.model(), self.basis.as_ref())?;
        self.basis = basis;
        self.hash = Some(im.structural_hash());
        Ok(sol)
    }

    /// Drops the carried basis (e.g. after an error path left it suspect).
    pub fn reset(&mut self) {
        self.basis = None;
        self.hash = None;
    }

    /// Whether a basis is currently carried (test/diagnostic hook).
    pub fn has_basis(&self) -> bool {
        self.basis.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Sense};

    fn lp() -> Model {
        let mut m = Model::new("inc", Sense::Maximize);
        let x = m.add_cont("x", 0.0, 3.0);
        let y = m.add_cont("y", 0.0, 3.0);
        m.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint("c2", vec![(x, 1.0), (y, 3.0)], ConstraintOp::Le, 6.0);
        m.set_objective(vec![(x, 3.0), (y, 2.0)], 0.0);
        m
    }

    #[test]
    fn hash_ignores_values_and_sees_structure() {
        let base = structural_hash(&lp());
        let mut m = lp();
        let x = VarId::from_index(0);
        m.set_constraint_rhs(0, 9.0).unwrap();
        m.set_constraint_coeff(1, x, 2.5).unwrap();
        m.set_objective_coeff(x, -1.0).unwrap();
        m.set_var_bounds(x, 1.0, 2.0);
        assert_eq!(
            structural_hash(&m),
            base,
            "value edits must not move the hash"
        );

        let mut extra_row = lp();
        extra_row.add_constraint("c3", vec![(x, 1.0)], ConstraintOp::Ge, 0.0);
        assert_ne!(structural_hash(&extra_row), base);

        let mut renamed = Model::new("inc", Sense::Maximize);
        let x2 = renamed.add_cont("x", 0.0, 3.0);
        let y2 = renamed.add_cont("y", 0.0, 3.0);
        renamed.add_constraint("other", vec![(x2, 1.0), (y2, 1.0)], ConstraintOp::Le, 4.0);
        renamed.add_constraint("c2", vec![(x2, 1.0), (y2, 3.0)], ConstraintOp::Le, 6.0);
        renamed.set_objective(vec![(x2, 3.0), (y2, 2.0)], 0.0);
        assert_ne!(structural_hash(&renamed), base);
    }

    #[test]
    fn duplicate_row_names_are_rejected() {
        let mut m = lp();
        let x = VarId::from_index(0);
        m.add_constraint("c1", vec![(x, 1.0)], ConstraintOp::Le, 1.0);
        assert!(IncrementalModel::new(m).is_err());
    }

    #[test]
    fn named_mutators_hit_the_right_row() {
        let mut im = IncrementalModel::new(lp()).unwrap();
        let y = VarId::from_index(1);
        im.set_rhs("c2", 9.0).unwrap();
        im.set_coeff("c1", y, 2.0).unwrap();
        assert_eq!(im.model().constraints()[1].rhs, 9.0);
        assert_eq!(im.model().constraints()[0].terms[1], (y, 2.0));
        assert!(im.set_rhs("nope", 1.0).is_err());
        assert!(im.set_rhs("c1", f64::NAN).is_err());
        assert!(im.set_var_bounds(y, 2.0, 1.0).is_err());
    }

    #[test]
    fn exact_mode_matches_fresh_solves_bitwise() {
        let mut im = IncrementalModel::new(lp()).unwrap();
        let mut inc = IncrementalSolver::new(MipSolver::default());
        for rhs in [4.0, 2.5, 6.0, 1.0] {
            im.set_rhs("c1", rhs).unwrap();
            let a = inc.solve(&im).unwrap();
            let mut fresh = lp();
            fresh.set_constraint_rhs(0, rhs).unwrap();
            let b = MipSolver::default().solve(&fresh).unwrap();
            assert_eq!(a.objective.to_bits(), b.objective.to_bits());
            assert_eq!(a.values, b.values);
            assert!(!inc.has_basis(), "exact mode must not carry state");
        }
    }

    #[test]
    fn basis_reuse_carries_and_resets() {
        let mut im = IncrementalModel::new(lp()).unwrap();
        let mut inc = IncrementalSolver::new(MipSolver::default());
        inc.reuse_basis = true;
        let first = inc.solve(&im).unwrap();
        assert!(inc.has_basis());
        im.set_rhs("c1", 3.0).unwrap();
        let second = inc.solve(&im).unwrap();
        let mut fresh = lp();
        fresh.set_constraint_rhs(0, 3.0).unwrap();
        let oracle = MipSolver::default().solve(&fresh).unwrap();
        assert!((second.objective - oracle.objective).abs() < 1e-9);
        assert!((first.objective - 11.0).abs() < 1e-6);
        inc.reset();
        assert!(!inc.has_basis());
    }
}
