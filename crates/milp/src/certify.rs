//! Solver-independent certification of LP/MILP solutions.
//!
//! The branch-and-bound solver is hand-rolled, and every bill-capping
//! decision rests on it. This module re-derives, from the [`Model`] and a
//! returned [`Solution`] alone, everything the solver *claims*:
//!
//! * **Primal feasibility** — variable bounds and every constraint row,
//!   with the same magnitude-scaled tolerance the solver itself uses,
//!   plus `|coeff| * INT_TOL` per integer term (the branch-and-bound
//!   snaps near-integral values to exact integers without re-adjusting
//!   the continuous variables, displacing binding rows by exactly that
//!   much).
//! * **Integrality** — integer/binary variables sit within
//!   [`crate::INT_TOL`] of an integer.
//! * **Objective honesty** — the reported objective equals the objective
//!   re-evaluated at the returned point.
//! * **Bound consistency** — the dual bound in [`MipStats::best_bound`]
//!   lies on the correct side of the objective, and the reported
//!   [`MipStats::gap`] matches the gap implied by objective and bound.
//! * **Dual certificates** (LP solves) — sign conventions per constraint
//!   sense, complementary slackness, dual feasibility of the implied
//!   reduced costs, and weak/strong duality through the bounded-variable
//!   dual objective.
//!
//! Nothing here calls the solver: a corrupted or stale solution cannot
//! certify itself. The result is a structured [`CertifyReport`] listing
//! each violated invariant with its slack magnitude, not a bare bool.
//!
//! [`MipStats::best_bound`]: crate::MipStats::best_bound
//! [`MipStats::gap`]: crate::MipStats::gap

use crate::model::{Constraint, ConstraintOp, Model, Sense, VarType};
use crate::solution::{Solution, Status};
use crate::INT_TOL;
use std::fmt;

/// Tolerances used by [`certify_solution_with`].
///
/// These are deliberately looser than the solver's internal `1e-9`
/// working tolerance: certification asks "is this answer trustworthy",
/// not "did the final pivot converge to machine precision".
#[derive(Debug, Clone, Copy)]
pub struct CertifyOptions {
    /// Primal feasibility tolerance, scaled by row/bound magnitude.
    pub tol: f64,
    /// Integrality tolerance for integer/binary variables.
    pub int_tol: f64,
    /// Dual feasibility / complementary-slackness tolerance.
    pub dual_tol: f64,
    /// Slack allowed between the reported gap and the gap implied by
    /// `objective` and `best_bound`.
    pub gap_tol: f64,
}

impl Default for CertifyOptions {
    fn default() -> Self {
        Self {
            tol: 1e-6,
            int_tol: INT_TOL,
            dual_tol: 1e-6,
            gap_tol: 1e-6,
        }
    }
}

/// One violated invariant, with the magnitude of the violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// `values` has the wrong length for the model.
    Dimension {
        /// The model's variable count.
        expected: usize,
        /// The solution's value count.
        got: usize,
    },
    /// A variable value (or the objective) is NaN/infinite.
    NonFinite {
        /// What carried the bad value (variable name or "objective").
        what: String,
        /// The non-finite value itself.
        value: f64,
    },
    /// A variable sits outside its bounds by `slack`.
    Bound {
        /// Variable index.
        var: usize,
        /// Variable name.
        name: String,
        /// Offending value.
        value: f64,
        /// Lower bound.
        lb: f64,
        /// Upper bound.
        ub: f64,
        /// Distance outside the bound interval.
        slack: f64,
    },
    /// An integer/binary variable is fractional by `distance`.
    Integrality {
        /// Variable index.
        var: usize,
        /// Variable name.
        name: String,
        /// Offending (fractional) value.
        value: f64,
        /// Distance to the nearest integer.
        distance: f64,
    },
    /// A constraint row is violated by `slack` (beyond tolerance).
    Constraint {
        /// Constraint index.
        index: usize,
        /// Constraint name.
        name: String,
        /// Evaluated left-hand side at the solution.
        lhs: f64,
        /// Comparison operator.
        op: ConstraintOp,
        /// Right-hand-side constant.
        rhs: f64,
        /// Violation magnitude beyond tolerance.
        slack: f64,
    },
    /// The reported objective differs from the objective re-evaluated at
    /// the returned point.
    Objective {
        /// Objective claimed by the solution.
        reported: f64,
        /// Objective re-evaluated at the returned point.
        recomputed: f64,
        /// Absolute difference.
        error: f64,
    },
    /// The dual bound lies on the wrong side of the objective
    /// (a minimization bound above the objective, or vice versa).
    BoundSide {
        /// Objective of the solution.
        objective: f64,
        /// Reported dual bound.
        best_bound: f64,
        /// How far the bound sits on the wrong side.
        excess: f64,
    },
    /// The reported gap disagrees with `|objective - best_bound|`.
    GapMismatch {
        /// Gap claimed in [`crate::MipStats`].
        reported: f64,
        /// Gap implied by objective and best bound.
        implied: f64,
    },
    /// A solution claiming optimality carries a non-trivial gap.
    OptimalWithGap {
        /// The non-trivial gap reported.
        gap: f64,
    },
    /// The dual vector has the wrong length.
    DualCount {
        /// The model's constraint count.
        expected: usize,
        /// The solution's dual count.
        got: usize,
    },
    /// A dual has the wrong sign for its constraint sense.
    DualSign {
        /// Constraint index.
        index: usize,
        /// Constraint name.
        name: String,
        /// Offending dual value.
        dual: f64,
    },
    /// A nonzero dual on a slack (inactive) constraint.
    ComplementarySlackness {
        /// Constraint index.
        index: usize,
        /// Constraint name.
        name: String,
        /// Nonzero dual on the inactive row.
        dual: f64,
        /// The row's (nonzero) slack.
        slack: f64,
    },
    /// The reduced cost implied by the duals has the wrong sign for the
    /// variable's position against its bounds.
    DualFeasibility {
        /// Variable index.
        var: usize,
        /// Variable name.
        name: String,
        /// Offending reduced cost.
        reduced_cost: f64,
    },
    /// Weak/strong duality fails: the dual objective reconstructed from
    /// the duals does not match the primal objective.
    Duality {
        /// Primal objective.
        primal: f64,
        /// Dual objective reconstructed from the duals.
        dual: f64,
        /// Absolute difference beyond tolerance.
        error: f64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Dimension { expected, got } => {
                write!(f, "solution has {got} values for {expected} variables")
            }
            Violation::NonFinite { what, value } => write!(f, "{what} is non-finite ({value})"),
            Violation::Bound {
                name,
                value,
                lb,
                ub,
                slack,
                ..
            } => write!(
                f,
                "variable '{name}' = {value} outside [{lb}, {ub}] by {slack:.3e}"
            ),
            Violation::Integrality {
                name,
                value,
                distance,
                ..
            } => write!(
                f,
                "integer variable '{name}' = {value} is fractional by {distance:.3e}"
            ),
            Violation::Constraint {
                name,
                lhs,
                op,
                rhs,
                slack,
                ..
            } => {
                let sym = match op {
                    ConstraintOp::Le => "<=",
                    ConstraintOp::Ge => ">=",
                    ConstraintOp::Eq => "==",
                };
                write!(
                    f,
                    "constraint '{name}': {lhs} {sym} {rhs} violated by {slack:.3e}"
                )
            }
            Violation::Objective {
                reported,
                recomputed,
                error,
            } => write!(
                f,
                "objective reported {reported} but re-evaluates to {recomputed} (error {error:.3e})"
            ),
            Violation::BoundSide {
                objective,
                best_bound,
                excess,
            } => write!(
                f,
                "dual bound {best_bound} on the wrong side of objective {objective} by {excess:.3e}"
            ),
            Violation::GapMismatch { reported, implied } => {
                write!(f, "reported gap {reported:.3e} vs implied {implied:.3e}")
            }
            Violation::OptimalWithGap { gap } => {
                write!(f, "solution claims optimality with gap {gap:.3e}")
            }
            Violation::DualCount { expected, got } => {
                write!(f, "{got} duals for {expected} constraints")
            }
            Violation::DualSign { name, dual, .. } => {
                write!(f, "dual of constraint '{name}' has wrong sign ({dual})")
            }
            Violation::ComplementarySlackness {
                name, dual, slack, ..
            } => write!(
                f,
                "constraint '{name}' is slack by {slack:.3e} yet carries dual {dual}"
            ),
            Violation::DualFeasibility {
                name, reduced_cost, ..
            } => write!(
                f,
                "variable '{name}' has dual-infeasible reduced cost {reduced_cost:.3e}"
            ),
            Violation::Duality {
                primal,
                dual,
                error,
            } => write!(
                f,
                "duality gap: primal {primal} vs dual objective {dual} (error {error:.3e})"
            ),
        }
    }
}

/// The outcome of certifying a solution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CertifyReport {
    /// Every violated invariant, with slack magnitudes.
    pub violations: Vec<Violation>,
    /// Number of individual invariant checks performed.
    pub checks: usize,
}

impl CertifyReport {
    /// True when every checked invariant holds.
    pub fn certified(&self) -> bool {
        self.violations.is_empty()
    }

    fn fail(&mut self, v: Violation) {
        self.violations.push(v);
    }

    fn check(&mut self, ok: bool, v: impl FnOnce() -> Violation) {
        self.checks += 1;
        if !ok {
            self.fail(v());
        }
    }
}

impl fmt::Display for CertifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.certified() {
            return write!(f, "certified ({} checks)", self.checks);
        }
        write!(
            f,
            "{} of {} checks failed: ",
            self.violations.len(),
            self.checks
        )?;
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// Total `|coefficient|` mass of a row's integer/binary terms: the row's
/// worst-case displacement per unit of integrality tolerance when the
/// branch-and-bound snaps near-integral values to exact integers.
fn int_coeff_mass(model: &Model, c: &Constraint) -> f64 {
    c.terms
        .iter()
        .filter(|&&(v, _)| {
            matches!(
                model.variables()[v.index()].var_type,
                VarType::Integer | VarType::Binary
            )
        })
        .map(|&(_, coeff)| coeff.abs())
        .sum()
}

/// Evaluates a constraint row and its magnitude scale at a point.
fn row_eval(c: &Constraint, values: &[f64]) -> (f64, f64) {
    let mut lhs = 0.0;
    let mut max_term = 0.0f64;
    for &(v, coeff) in &c.terms {
        let term = coeff * values[v.index()];
        lhs += term;
        max_term = max_term.max(term.abs());
    }
    (lhs, 1.0 + c.rhs.abs().max(max_term))
}

/// Certifies `sol` against `model` with default tolerances.
pub fn certify_solution(model: &Model, sol: &Solution) -> CertifyReport {
    certify_solution_with(model, sol, &CertifyOptions::default())
}

/// Certifies `sol` against `model`: primal feasibility, integrality,
/// objective honesty, MIP bound consistency, and (when duals are present)
/// the full dual certificate. See the module docs for the invariant list.
pub fn certify_solution_with(
    model: &Model,
    sol: &Solution,
    opts: &CertifyOptions,
) -> CertifyReport {
    let mut report = CertifyReport::default();
    let n = model.num_vars();
    report.check(sol.values.len() == n, || Violation::Dimension {
        expected: n,
        got: sol.values.len(),
    });
    if sol.values.len() != n {
        return report; // nothing else is meaningful
    }
    report.check(sol.objective.is_finite(), || Violation::NonFinite {
        what: "objective".to_string(),
        value: sol.objective,
    });

    // --- primal feasibility: bounds and integrality ---
    for (i, var) in model.variables().iter().enumerate() {
        let x = sol.values[i];
        report.check(x.is_finite(), || Violation::NonFinite {
            what: format!("variable '{}'", var.name),
            value: x,
        });
        if !x.is_finite() {
            continue;
        }
        let bound_tol = opts.tol
            * (1.0
                + finite_or(var.lb, 0.0)
                    .abs()
                    .max(finite_or(var.ub, 0.0).abs()));
        let slack = (var.lb - x).max(x - var.ub).max(0.0);
        report.check(slack <= bound_tol, || Violation::Bound {
            var: i,
            name: var.name.clone(),
            value: x,
            lb: var.lb,
            ub: var.ub,
            slack,
        });
        if matches!(var.var_type, VarType::Integer | VarType::Binary) {
            let distance = (x - x.round()).abs();
            report.check(distance <= opts.int_tol, || Violation::Integrality {
                var: i,
                name: var.name.clone(),
                value: x,
                distance,
            });
        }
    }

    // --- primal feasibility: constraint rows ---
    for (i, c) in model.constraints().iter().enumerate() {
        let (lhs, scale) = row_eval(c, &sol.values);
        // Integer variables are only trusted to int_tol (the
        // branch-and-bound snaps near-integral LP values to round()
        // without re-adjusting the continuous variables), so every row
        // inherits up to |a_j| * int_tol of displacement per integer
        // term on top of the magnitude-scaled float tolerance.
        let t = opts.tol * scale + opts.int_tol * int_coeff_mass(model, c);
        let slack = match c.op {
            ConstraintOp::Le => lhs - c.rhs,
            ConstraintOp::Ge => c.rhs - lhs,
            ConstraintOp::Eq => (lhs - c.rhs).abs(),
        };
        report.check(slack <= t, || Violation::Constraint {
            index: i,
            name: c.name.clone(),
            lhs,
            op: c.op,
            rhs: c.rhs,
            slack,
        });
    }

    // --- objective honesty ---
    let recomputed = model.eval_objective(&sol.values);
    let obj_err = (sol.objective - recomputed).abs();
    report.check(obj_err <= opts.tol * (1.0 + recomputed.abs()), || {
        Violation::Objective {
            reported: sol.objective,
            recomputed,
            error: obj_err,
        }
    });

    // --- MIP bound consistency ---
    if let Some(stats) = sol.mip {
        let scale = 1.0 + sol.objective.abs();
        let excess = match model.sense {
            Sense::Minimize => stats.best_bound - sol.objective,
            Sense::Maximize => sol.objective - stats.best_bound,
        };
        // The dual bound may pass the objective only by float noise
        // (plus the solver's own relative gap tolerance).
        report.check(excess <= opts.tol * scale, || Violation::BoundSide {
            objective: sol.objective,
            best_bound: stats.best_bound,
            excess,
        });
        let implied = stats.implied_gap(sol.objective);
        report.check(
            (stats.gap - implied).abs() <= opts.gap_tol || excess.abs() <= opts.tol * scale,
            || Violation::GapMismatch {
                reported: stats.gap,
                implied,
            },
        );
        if sol.status == Status::Optimal {
            report.check(stats.gap <= opts.gap_tol, || Violation::OptimalWithGap {
                gap: stats.gap,
            });
        }
    }

    // --- dual certificate (LP solves) ---
    if let Some(duals) = &sol.duals {
        audit_duals(model, sol, duals, opts, &mut report);
    }

    report
}

fn finite_or(x: f64, fallback: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        fallback
    }
}

/// Audits an LP dual vector: sign conventions, complementary slackness,
/// dual feasibility of reduced costs, and weak/strong duality.
///
/// Everything is done in *minimization space* (`key = sign * objective`):
/// there a `<=` row's dual is non-positive, a `>=` row's non-negative,
/// and the bounded-variable dual objective never exceeds the primal.
fn audit_duals(
    model: &Model,
    sol: &Solution,
    duals: &[f64],
    opts: &CertifyOptions,
    report: &mut CertifyReport,
) {
    let m = model.num_constraints();
    report.check(duals.len() == m, || Violation::DualCount {
        expected: m,
        got: duals.len(),
    });
    if duals.len() != m {
        return;
    }
    let sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    // Sign conventions and complementary slackness, row by row.
    for (i, (c, &d)) in model.constraints().iter().zip(duals).enumerate() {
        let y = sign * d; // dual in minimization space
        let (lhs, scale) = row_eval(c, &sol.values);
        let dual_tol = opts.dual_tol * (1.0 + y.abs());
        let wrong_sign = match c.op {
            ConstraintOp::Le => y > dual_tol,
            ConstraintOp::Ge => y < -dual_tol,
            ConstraintOp::Eq => false,
        };
        report.check(!wrong_sign, || Violation::DualSign {
            index: i,
            name: c.name.clone(),
            dual: d,
        });
        if !matches!(c.op, ConstraintOp::Eq) {
            let row_slack = (lhs - c.rhs).abs();
            let active = row_slack <= opts.tol * scale;
            report.check(y.abs() <= opts.dual_tol || active, || {
                Violation::ComplementarySlackness {
                    index: i,
                    name: c.name.clone(),
                    dual: d,
                    slack: row_slack,
                }
            });
        }
    }

    // Reduced costs in minimization space:
    // rc_j = sign*c_j - sum_i y_i A_ij.
    let mut rc: Vec<f64> = vec![0.0; model.num_vars()];
    let mut rc_scale: Vec<f64> = vec![1.0; model.num_vars()];
    for &(v, coeff) in model.objective() {
        rc[v.index()] += sign * coeff;
        rc_scale[v.index()] += coeff.abs();
    }
    for (c, &d) in model.constraints().iter().zip(duals) {
        let y = sign * d;
        for &(v, coeff) in &c.terms {
            rc[v.index()] -= y * coeff;
            rc_scale[v.index()] += (y * coeff).abs();
        }
    }

    // Dual feasibility: the reduced cost must "push" the variable against
    // the bound it sits at. Fixed variables (lb == ub) are exempt.
    let mut dual_obj = sign * model.objective_constant();
    for (c, &d) in model.constraints().iter().zip(duals) {
        dual_obj += sign * d * c.rhs;
    }
    let mut dual_obj_ok = true;
    for (j, var) in model.variables().iter().enumerate() {
        let x = sol.values[j];
        let bound_tol = opts.tol
            * (1.0
                + finite_or(var.lb, 0.0)
                    .abs()
                    .max(finite_or(var.ub, 0.0).abs()))
            + opts.tol;
        let at_lb = var.lb.is_finite() && x - var.lb <= bound_tol;
        let at_ub = var.ub.is_finite() && var.ub - x <= bound_tol;
        let t = opts.dual_tol * rc_scale[j];
        let feasible = match (at_lb, at_ub) {
            (true, true) => true, // (near-)fixed variable: any reduced cost
            (true, false) => rc[j] >= -t,
            (false, true) => rc[j] <= t,
            (false, false) => rc[j].abs() <= t,
        };
        report.check(feasible, || Violation::DualFeasibility {
            var: j,
            name: var.name.clone(),
            reduced_cost: rc[j],
        });
        // Bounded-variable dual objective: positive reduced costs bind at
        // the lower bound, negative at the upper.
        if rc[j] > t {
            if var.lb.is_finite() {
                dual_obj += rc[j] * var.lb;
            } else {
                dual_obj_ok = false;
            }
        } else if rc[j] < -t {
            if var.ub.is_finite() {
                dual_obj += rc[j] * var.ub;
            } else {
                dual_obj_ok = false;
            }
        } else {
            // Near-zero reduced cost: absorb the float dust where the
            // variable actually sits so noise cannot accumulate.
            dual_obj += rc[j] * x;
        }
    }

    // Weak + strong duality (minimization space): the dual objective is a
    // lower bound on, and at optimality equals, the primal objective.
    if dual_obj_ok {
        let primal = sign * sol.objective;
        let scale = 1.0 + primal.abs().max(dual_obj.abs());
        let error = (primal - dual_obj).abs();
        report.check(error <= opts.dual_tol * scale * 10.0, || {
            Violation::Duality {
                primal: sol.objective,
                dual: sign * dual_obj,
                error,
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::MipSolver;
    use crate::model::{ConstraintOp, Model, Sense};
    use crate::simplex::LpSolver;

    fn knapsack() -> Model {
        let mut m = Model::new("knap", Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint(
            "w",
            vec![(a, 3.0), (b, 4.0), (c, 2.0)],
            ConstraintOp::Le,
            6.0,
        );
        m.set_objective(vec![(a, 10.0), (b, 13.0), (c, 7.0)], 0.0);
        m
    }

    fn textbook_lp() -> Model {
        // max 3x + 5y; x <= 4, 2y <= 12, 3x + 2y <= 18.
        let mut m = Model::new("lp", Sense::Maximize);
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        let y = m.add_cont("y", 0.0, f64::INFINITY);
        m.add_constraint("c1", vec![(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint("c2", vec![(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_constraint("c3", vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        m.set_objective(vec![(x, 3.0), (y, 5.0)], 0.0);
        m
    }

    #[test]
    fn genuine_mip_solution_certifies() {
        let m = knapsack();
        let sol = MipSolver::default().solve(&m).unwrap();
        let report = certify_solution(&m, &sol);
        assert!(report.certified(), "{report}");
        assert!(report.checks > 5);
    }

    /// The branch-and-bound snaps near-integral LP values to `round()`
    /// without re-adjusting continuous variables, so a binding row with a
    /// big integer coefficient can end up displaced by up to
    /// `|coeff| * INT_TOL`. Certification must tolerate exactly that
    /// (observed in the wild: an indicator row `q - 65 z <= 0` binding at
    /// `z = 4.9e-8`, snapped to 0, leaving `q = 3.2e-6`), while anything
    /// beyond the snap allowance still fails.
    #[test]
    fn integer_snap_displacement_is_tolerated_but_no_more() {
        let mut m = Model::new("snap", Sense::Maximize);
        let q = m.add_cont("q", 0.0, 100.0);
        let z = m.add_binary("z");
        m.add_constraint("ind", vec![(q, 1.0), (z, -65.0)], ConstraintOp::Le, 0.0);
        m.set_objective(vec![(q, 1.0)], 0.0);

        // z sat at 4.9e-8 pre-snap; q kept the binding-row value.
        let mut snapped = MipSolver::default().solve(&m).unwrap();
        snapped.mip = None; // no stats to cross-check against the edit
        snapped.values = vec![65.0 * 4.9e-8, 0.0];
        snapped.objective = 65.0 * 4.9e-8;
        let report = certify_solution(&m, &snapped);
        assert!(report.certified(), "{report}");

        // Ten times the whole-row snap allowance is a real violation.
        let mut beyond = snapped.clone();
        beyond.values = vec![65.0 * INT_TOL * 10.0, 0.0];
        beyond.objective = 65.0 * INT_TOL * 10.0;
        let report = certify_solution(&m, &beyond);
        assert!(!report.certified(), "must reject {report}");

        // A row with no integer terms gets no allowance at all.
        let mut lp = Model::new("cont", Sense::Maximize);
        let x = lp.add_cont("x", 0.0, 100.0);
        lp.add_constraint("ub", vec![(x, 1.0)], ConstraintOp::Le, 0.0);
        lp.set_objective(vec![(x, 1.0)], 0.0);
        let mut drift = LpSolver::default().solve(&lp).unwrap();
        drift.duals = None; // the primal row check is the subject here
        drift.values = vec![3.2e-6];
        drift.objective = 3.2e-6;
        assert!(!certify_solution(&lp, &drift).certified());
    }

    #[test]
    fn genuine_lp_solution_with_duals_certifies() {
        let m = textbook_lp();
        let sol = LpSolver::default().solve(&m).unwrap();
        assert!(sol.duals.is_some());
        let report = certify_solution(&m, &sol);
        assert!(report.certified(), "{report}");
    }

    #[test]
    fn revised_lp_duals_certify() {
        // A box-bounded version of the textbook LP so the revised engine's
        // dual cold start exists; the duals must survive the full audit
        // (signs, complementary slackness, strong duality) just like the
        // dense solver's.
        let mut m = Model::new("lp_boxed", Sense::Maximize);
        let x = m.add_cont("x", 0.0, 100.0);
        let y = m.add_cont("y", 0.0, 100.0);
        m.add_constraint("c1", vec![(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint("c2", vec![(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_constraint("c3", vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        m.set_objective(vec![(x, 3.0), (y, 5.0)], 0.0);
        let engine =
            crate::revised::RevisedEngine::new(&m, crate::revised::RevisedOptions::default());
        assert!(engine.cold_startable());
        let r = engine.solve(None).expect("boxed textbook LP solves");
        let sol = crate::solution::Solution {
            objective: m.eval_objective(&r.values),
            values: r.values,
            duals: Some(r.duals),
            ..MipSolver {
                revised: false,
                ..MipSolver::default()
            }
            .solve(&m)
            .expect("dense reference solves")
        };
        let report = certify_solution(&m, &sol);
        assert!(
            report.certified(),
            "revised duals failed the audit: {report}"
        );
    }

    #[test]
    fn revised_mip_path_duals_certify() {
        // End-to-end: a continuous model through MipSolver's pure-LP path
        // rides the revised engine by default and must return duals that
        // certify.
        let mut m = Model::new("pure_lp", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        let y = m.add_cont("y", 0.0, 10.0);
        m.add_constraint("cover", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 4.0);
        m.set_objective(vec![(x, 2.0), (y, 3.0)], 0.0);
        let solver = MipSolver::default();
        assert!(solver.revised, "revised engine is on by default");
        let sol = solver.solve(&m).unwrap();
        assert!(sol.duals.is_some(), "pure-LP path must surface duals");
        let report = certify_solution(&m, &sol);
        assert!(report.certified(), "{report}");
    }

    #[test]
    fn minimize_lp_duals_certify() {
        let mut m = Model::new("min", Sense::Minimize);
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        let y = m.add_cont("y", 0.0, f64::INFINITY);
        m.add_constraint("cover", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 4.0);
        m.add_constraint("tie", vec![(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0);
        m.set_objective(vec![(x, 2.0), (y, 3.0)], 5.0);
        let sol = LpSolver::default().solve(&m).unwrap();
        let report = certify_solution(&m, &sol);
        assert!(report.certified(), "{report}");
    }

    #[test]
    fn corrupted_value_breaks_constraint() {
        let m = knapsack();
        let mut sol = MipSolver::default().solve(&m).unwrap();
        // Claim every item is taken: violates the knapsack row.
        sol.values = vec![1.0, 1.0, 1.0];
        let report = certify_solution(&m, &sol);
        assert!(!report.certified());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Constraint { .. })));
    }

    #[test]
    fn fractional_binary_is_rejected() {
        let m = knapsack();
        let mut sol = MipSolver::default().solve(&m).unwrap();
        sol.values[0] = 0.5;
        let report = certify_solution(&m, &sol);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Integrality { .. })));
    }

    #[test]
    fn objective_lie_is_rejected() {
        let m = knapsack();
        let mut sol = MipSolver::default().solve(&m).unwrap();
        sol.objective += 3.0;
        let report = certify_solution(&m, &sol);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Objective { .. })));
    }

    #[test]
    fn wrong_side_bound_is_rejected() {
        let m = knapsack();
        let mut sol = MipSolver::default().solve(&m).unwrap();
        // A maximization dual bound below the incumbent is a lie.
        let stats = sol.mip.as_mut().unwrap();
        stats.best_bound = sol.objective - 5.0;
        let report = certify_solution(&m, &sol);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::BoundSide { .. })));
    }

    #[test]
    fn gap_lie_is_rejected() {
        let m = knapsack();
        let mut sol = MipSolver::default().solve(&m).unwrap();
        let stats = sol.mip.as_mut().unwrap();
        stats.best_bound = sol.objective + 4.0; // bound claims slack remains
        stats.gap = 0.0; // ... while the gap claims none
        let report = certify_solution(&m, &sol);
        assert!(!report.certified());
    }

    #[test]
    fn stale_duals_are_rejected() {
        // Duals taken from a *different* rhs violate complementary
        // slackness / duality at the new optimum.
        let m = textbook_lp();
        let sol = LpSolver::default().solve(&m).unwrap();

        let mut loosened = Model::new("lp2", Sense::Maximize);
        let x = loosened.add_cont("x", 0.0, f64::INFINITY);
        let y = loosened.add_cont("y", 0.0, f64::INFINITY);
        loosened.add_constraint("c1", vec![(x, 1.0)], ConstraintOp::Le, 4.0);
        loosened.add_constraint("c2", vec![(y, 2.0)], ConstraintOp::Le, 12.0);
        loosened.add_constraint("c3", vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 30.0);
        loosened.set_objective(vec![(x, 3.0), (y, 5.0)], 0.0);
        let mut fresh = LpSolver::default().solve(&loosened).unwrap();
        fresh.duals = sol.duals.clone(); // stale certificate
        let report = certify_solution(&loosened, &fresh);
        assert!(!report.certified(), "stale duals must not certify");
    }

    #[test]
    fn wrong_dual_sign_is_rejected() {
        let m = textbook_lp();
        let mut sol = LpSolver::default().solve(&m).unwrap();
        let duals = sol.duals.as_mut().unwrap();
        duals[1] = -duals[1].max(1.0); // a maximization <= row dual must be >= 0
        let report = certify_solution(&m, &sol);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DualSign { .. })));
    }

    #[test]
    fn dimension_mismatch_short_circuits() {
        let m = knapsack();
        let mut sol = MipSolver::default().solve(&m).unwrap();
        sol.values.pop();
        let report = certify_solution(&m, &sol);
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(report.violations[0], Violation::Dimension { .. }));
    }

    #[test]
    fn report_display_mentions_failures() {
        let m = knapsack();
        let mut sol = MipSolver::default().solve(&m).unwrap();
        sol.values[1] = 7.0;
        let report = certify_solution(&m, &sol);
        let text = report.to_string();
        assert!(text.contains("checks failed"), "{text}");
        let ok = certify_solution(&m, &MipSolver::default().solve(&m).unwrap());
        assert!(ok.to_string().starts_with("certified"));
    }
}
