//! Compressed-sparse-column (CSC) matrix storage for the revised simplex.
//!
//! The revised simplex ([`crate::revised`]) never forms a dense tableau:
//! it keeps the constraint matrix in CSC form and touches one column at a
//! time (pricing needs `aᵀ·y` per column, FTRAN needs one column
//! scattered into a dense right-hand side). The bill-capping MILPs are
//! sparse — each structural column appears in at most four rows (a big-M
//! pair, an exactly-one row and a power identity), and every slack column
//! is a unit vector — so column-wise sparse storage is the natural fit.

/// An `m × n` sparse matrix in compressed-sparse-column form.
///
/// Built once per model by [`crate::revised::RevisedEngine`]; immutable
/// afterwards (branch-and-bound only changes variable *bounds*, which the
/// revised formulation keeps out of the matrix entirely).
#[derive(Debug, Clone, PartialEq)]
pub struct CscMat {
    nrows: usize,
    ncols: usize,
    /// `col_ptr[j]..col_ptr[j+1]` indexes column `j`'s entries.
    col_ptr: Vec<usize>,
    /// Row index of each stored entry.
    row_ix: Vec<usize>,
    /// Value of each stored entry.
    vals: Vec<f64>,
}

impl CscMat {
    /// Builds a matrix from per-column sparse vectors. Entries with the
    /// same row index within a column are summed; exact zeros (including
    /// sums that cancel) are dropped.
    ///
    /// # Panics
    /// Panics if a row index is out of range — columns come from model
    /// constraints that were already validated.
    pub fn from_columns(nrows: usize, columns: &[Vec<(usize, f64)>]) -> Self {
        let ncols = columns.len();
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        let mut row_ix = Vec::new();
        let mut vals = Vec::new();
        col_ptr.push(0);
        let mut dense: Vec<f64> = vec![0.0; nrows];
        let mut touched: Vec<usize> = Vec::new();
        for col in columns {
            for &(r, v) in col {
                assert!(r < nrows, "row index {r} out of range ({nrows} rows)");
                if dense[r] == 0.0 {
                    touched.push(r);
                }
                dense[r] += v;
            }
            touched.sort_unstable();
            for &r in &touched {
                if dense[r] != 0.0 {
                    row_ix.push(r);
                    vals.push(dense[r]);
                }
                dense[r] = 0.0;
            }
            touched.clear();
            col_ptr.push(row_ix.len());
        }
        Self {
            nrows,
            ncols,
            col_ptr,
            row_ix,
            vals,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Column `j` as parallel `(row indices, values)` slices.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_ix[lo..hi], &self.vals[lo..hi])
    }

    /// Dot product of column `j` with a dense row-indexed vector —
    /// the pricing kernel (`rcⱼ = cⱼ − aⱼᵀ·y`).
    pub fn col_dot(&self, j: usize, x: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        rows.iter().zip(vals).map(|(&r, &v)| v * x[r]).sum()
    }

    /// `out += alpha * column j` (dense scatter) — the right-hand-side
    /// assembly kernel for FTRAN.
    pub fn scatter_col(&self, j: usize, alpha: f64, out: &mut [f64]) {
        if alpha == 0.0 {
            return;
        }
        let (rows, vals) = self.col(j);
        for (&r, &v) in rows.iter().zip(vals) {
            out[r] += alpha * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_reads_columns() {
        let m = CscMat::from_columns(
            3,
            &[
                vec![(0, 1.0), (2, -2.0)],
                vec![(1, 3.0)],
                vec![],
                vec![(2, 0.5), (0, 4.0)],
            ],
        );
        assert_eq!((m.nrows(), m.ncols(), m.nnz()), (3, 4, 5));
        assert_eq!(m.col(0), (&[0usize, 2][..], &[1.0, -2.0][..]));
        assert_eq!(m.col(2), (&[][..], &[][..]));
        // Entries are sorted by row regardless of insertion order.
        assert_eq!(m.col(3), (&[0usize, 2][..], &[4.0, 0.5][..]));
    }

    #[test]
    fn duplicate_entries_sum_and_zeros_drop() {
        let m = CscMat::from_columns(2, &[vec![(0, 1.0), (0, 2.0), (1, 5.0), (1, -5.0)]]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.col(0), (&[0usize][..], &[3.0][..]));
    }

    #[test]
    fn dot_and_scatter() {
        let m = CscMat::from_columns(3, &[vec![(0, 2.0), (2, 3.0)]]);
        assert_eq!(m.col_dot(0, &[1.0, 100.0, 10.0]), 32.0);
        let mut out = vec![0.0; 3];
        m.scatter_col(0, -1.0, &mut out);
        assert_eq!(out, vec![-2.0, 0.0, -3.0]);
        m.scatter_col(0, 0.0, &mut out);
        assert_eq!(out, vec![-2.0, 0.0, -3.0]);
    }
}
