//! # billcap-milp
//!
//! A self-contained linear-programming and mixed-integer-linear-programming
//! solver, built for the `billcap` reproduction of *Electricity Bill Capping
//! for Cloud-Scale Data Centers that Impact the Power Markets* (ICPP 2012).
//!
//! The paper solves its two optimization problems (cost minimization and
//! throughput maximization within a budget) with `lp_solve`, a C library
//! using branch-and-bound over a simplex LP solver. This crate provides the
//! same capability in pure Rust:
//!
//! * [`Model`] — a named-variable model builder with bounds, integrality,
//!   linear constraints and a linear objective.
//! * [`revised`] — a sparse revised simplex over CSC storage
//!   ([`sparse`]) and an LU-factorized basis ([`basis`]), with bounded
//!   variables and a dual entry point that lets branch-and-bound
//!   warm-start each child from its parent's basis.
//! * [`simplex`] — a dense two-phase primal simplex solver with Dantzig
//!   pricing and a Bland's-rule anti-cycling fallback; the correctness
//!   oracle and fallback for models the revised engine cannot start.
//! * [`branch`] — a best-first branch-and-bound MILP solver on top of the
//!   simplex relaxations.
//!
//! The problem sizes produced by the bill-capping formulation are small
//! (hundreds of rows at the reference scale), and the constraint matrices
//! are sparse with box-bounded variables — exactly the shape the revised
//! simplex exploits. Decisions stay bit-comparable across engines; set
//! `BILLCAP_WARMSTART=0` to force cold starts as a differential oracle,
//! or [`MipSolver::revised`]` = false` for the dense path everywhere.
//!
//! ## Example
//!
//! ```
//! use billcap_milp::{Model, Sense, VarType, ConstraintOp, MipSolver};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x <= 2,  x,y integer >= 0
//! let mut m = Model::new("example", Sense::Maximize);
//! let x = m.add_var("x", VarType::Integer, 0.0, f64::INFINITY);
//! let y = m.add_var("y", VarType::Integer, 0.0, f64::INFINITY);
//! m.add_constraint("cap", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
//! m.add_constraint("xcap", vec![(x, 1.0)], ConstraintOp::Le, 2.0);
//! m.set_objective(vec![(x, 3.0), (y, 2.0)], 0.0);
//!
//! let sol = MipSolver::default().solve(&m).unwrap();
//! assert!((sol.objective - 10.0).abs() < 1e-6); // x = 2, y = 2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basis;
pub mod branch;
pub mod certify;
pub mod error;
pub mod expr;
pub mod incremental;
pub mod io;
pub mod lint;
pub mod model;
pub mod oracle;
pub mod presolve;
pub mod revised;
pub mod simplex;
pub mod solution;
pub mod sparse;

pub use basis::BasisFactorization;
pub use branch::{BranchRule, MipSolver, NodeSelection};
pub use certify::{
    certify_solution, certify_solution_with, CertifyOptions, CertifyReport, Violation,
};
pub use error::SolveError;
pub use expr::LinExpr;
pub use incremental::{structural_hash, IncrementalModel, IncrementalSolver};
pub use io::{parse_lp, write_lp};
pub use lint::{lint_model, Finding, LintReport, ModelStats, Severity};
pub use model::{Constraint, ConstraintOp, Model, Sense, VarId, VarType, Variable};
pub use oracle::{brute_force_solve, brute_force_solve_capped};
pub use presolve::{
    presolve, propagate_bounds, propagate_bounds_with, PresolveResult, Propagation,
};
pub use revised::{
    BasisState, ColStatus, RevisedEngine, RevisedError, RevisedOptions, RevisedSolution,
    RevisedStats,
};
pub use simplex::{LpSolver, Pricing};
pub use solution::{MipStats, Solution, SolveTrace, Status};
pub use sparse::CscMat;

/// Default feasibility / optimality tolerance used throughout the solver.
pub const TOL: f64 = 1e-9;

/// Default integrality tolerance: a value within `INT_TOL` of an integer is
/// accepted as integral by the branch-and-bound search.
pub const INT_TOL: f64 = 1e-6;
