//! LU-factorized simplex basis with product-form eta updates.
//!
//! The basis matrices that branch-and-bound produces on the bill-capping
//! MILPs are dominated by slack columns (unit vectors): a 231-row basis
//! typically holds fewer than 40 structural columns. [`BasisFactorization`]
//! exploits that with a two-stage factorization:
//!
//! 1. **Forward triangularization** — repeatedly pivot on columns that
//!    have exactly one entry in the still-active rows. Every slack column
//!    pivots for free, and most structural columns follow once their
//!    neighbours are eliminated. This yields a large permuted
//!    upper-triangular block at zero fill-in.
//! 2. **Dense bump** — whatever small irreducible block remains (usually
//!    a handful of rows) is factorized with dense partial-pivoting LU.
//!
//! Basis changes between refactorizations are absorbed as product-form
//! *eta* matrices (`B = B₀·E₁…Eₖ`), the classic update that
//! Forrest–Tomlin refines; the engine refactorizes from scratch once the
//! eta file grows past its refactorization interval or a pivot looks
//! numerically unstable (see [`crate::revised`] for the policy).

/// A pivot too small to divide by — the basis is numerically singular.
const SINGULAR_EPS: f64 = 1e-10;

/// Eta entries smaller than this are dropped from the product form.
const ETA_DROP_EPS: f64 = 1e-12;

/// One product-form update: basis slot `slot` was replaced by a column
/// whose basis-space image (`B⁻¹·a`) was `w`. Applying the inverse eta
/// to a vector costs `O(nnz(w))`.
#[derive(Debug, Clone)]
struct Eta {
    /// Basis slot whose column was replaced.
    slot: usize,
    /// Off-diagonal entries of `w` as `(slot, value)` pairs.
    vals: Vec<(usize, f64)>,
    /// `w[slot]` — the pivot element; guaranteed away from zero.
    diag: f64,
}

/// Sparse upper-triangular column from the forward-triangularization pass.
#[derive(Debug, Clone)]
struct TriCol {
    /// Diagonal (pivot) value.
    diag: f64,
    /// Entries above the diagonal as `(permuted position, value)`,
    /// every position strictly smaller than this column's own.
    above: Vec<(usize, f64)>,
}

/// LU factorization of an `m × m` simplex basis, plus the eta file of
/// updates applied since the last refactorization.
///
/// Vectors pass through two index spaces: *row space* (constraint rows,
/// the space of right-hand sides and duals) and *slot space* (positions
/// in the ordered list of basic columns, the space of basic solutions).
/// [`ftran`](Self::ftran) maps row space → slot space (`B·z = b`);
/// [`btran`](Self::btran) maps slot space → row space (`Bᵀ·y = c_B`).
#[derive(Debug, Clone)]
pub struct BasisFactorization {
    m: usize,
    /// Size of the triangular block.
    t: usize,
    /// Permuted position `k` ↔ original row `row_of[k]`.
    row_of: Vec<usize>,
    /// Permuted position `k` ↔ basis slot `col_of[k]`.
    col_of: Vec<usize>,
    /// Triangular columns, one per position `k < t`.
    tri: Vec<TriCol>,
    /// For each bump column `k ≥ t`: its entries in triangular rows,
    /// as `(permuted position < t, value)`.
    u12: Vec<Vec<(usize, f64)>>,
    /// Dense `nb × nb` bump block, row-major, LU-decomposed in place.
    bump: Vec<f64>,
    /// Bump dimension.
    nb: usize,
    /// Partial-pivoting row swaps for the bump LU.
    ipiv: Vec<usize>,
    /// Product-form updates since factorization, oldest first.
    etas: Vec<Eta>,
}

impl BasisFactorization {
    /// Factorizes the basis whose column in slot `s` is the sparse
    /// vector `cols[s]` (row index, value — rows need not be sorted).
    /// Returns `None` when the basis is numerically singular.
    pub fn factor(m: usize, cols: &[Vec<(usize, f64)>]) -> Option<Self> {
        debug_assert_eq!(cols.len(), m);
        let mut row_active = vec![true; m];
        let mut col_active = vec![true; m];
        // How many entries each column has in still-active rows.
        let mut count: Vec<usize> = cols.iter().map(Vec::len).collect();
        // Which columns touch each row, for count maintenance.
        let mut row_cols: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (s, col) in cols.iter().enumerate() {
            for &(r, _) in col {
                debug_assert!(r < m);
                row_cols[r].push(s);
            }
        }
        // Seed the singleton queue in slot order for determinism.
        let mut queue: Vec<usize> = (0..m).filter(|&s| count[s] == 1).collect();
        let mut pivots: Vec<(usize, usize)> = Vec::new(); // (slot, row)
        while let Some(s) = queue.pop() {
            if !col_active[s] || count[s] != 1 {
                continue;
            }
            let Some(&(r, v)) = cols[s].iter().find(|&&(r, _)| row_active[r]) else {
                continue;
            };
            if v.abs() <= SINGULAR_EPS {
                // Too small to pivot on; leave this column for the bump,
                // where partial pivoting can judge it. It cannot re-enter
                // the queue (pushes happen only on a transition to 1).
                continue;
            }
            pivots.push((s, r));
            col_active[s] = false;
            row_active[r] = false;
            for &s2 in &row_cols[r] {
                if col_active[s2] {
                    count[s2] -= 1;
                    if count[s2] == 1 {
                        queue.push(s2);
                    }
                }
            }
        }

        let t = pivots.len();
        let mut row_of = Vec::with_capacity(m);
        let mut col_of = Vec::with_capacity(m);
        for &(s, r) in &pivots {
            col_of.push(s);
            row_of.push(r);
        }
        // Remaining rows/columns become the bump, in index order.
        for (r, &active) in row_active.iter().enumerate() {
            if active {
                row_of.push(r);
            }
        }
        for (s, &active) in col_active.iter().enumerate() {
            if active {
                col_of.push(s);
            }
        }
        debug_assert_eq!(row_of.len(), m);
        debug_assert_eq!(col_of.len(), m);
        let nb = m - t;
        let mut row_pos = vec![0usize; m];
        for (k, &r) in row_of.iter().enumerate() {
            row_pos[r] = k;
        }

        // Triangular columns: by construction every non-pivot entry of
        // column `col_of[k]` (k < t) lies in a row pivoted earlier.
        let mut tri = Vec::with_capacity(t);
        for (k, &(s, r)) in pivots.iter().enumerate() {
            let mut diag = 0.0;
            let mut above = Vec::new();
            for &(row, v) in &cols[s] {
                if row == r {
                    diag = v;
                } else {
                    let p = row_pos[row];
                    debug_assert!(p < k, "triangularization produced fill below the diagonal");
                    above.push((p, v));
                }
            }
            tri.push(TriCol { diag, above });
        }

        // Bump columns: split entries into the triangular coupling block
        // (U12) and the dense bump itself.
        let mut u12 = vec![Vec::new(); nb];
        let mut bump = vec![0.0; nb * nb];
        for k in t..m {
            let s = col_of[k];
            for &(row, v) in &cols[s] {
                let p = row_pos[row];
                if p < t {
                    u12[k - t].push((p, v));
                } else {
                    bump[(p - t) * nb + (k - t)] = v;
                }
            }
        }

        // Dense partial-pivoting LU on the bump, in place.
        let mut ipiv = vec![0usize; nb];
        for k in 0..nb {
            let mut best = k;
            let mut best_abs = bump[k * nb + k].abs();
            for i in k + 1..nb {
                let a = bump[i * nb + k].abs();
                if a > best_abs {
                    best = i;
                    best_abs = a;
                }
            }
            if best_abs <= SINGULAR_EPS {
                return None;
            }
            ipiv[k] = best;
            if best != k {
                for j in 0..nb {
                    bump.swap(k * nb + j, best * nb + j);
                }
            }
            let pivot = bump[k * nb + k];
            for i in k + 1..nb {
                let l = bump[i * nb + k] / pivot;
                bump[i * nb + k] = l;
                if l != 0.0 {
                    for j in k + 1..nb {
                        bump[i * nb + j] -= l * bump[k * nb + j];
                    }
                }
            }
        }

        Some(Self {
            m,
            t,
            row_of,
            col_of,
            tri,
            u12,
            bump,
            nb,
            ipiv,
            etas: Vec::new(),
        })
    }

    /// Basis dimension.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// Size of the dense bump block (diagnostic: 0 means the basis was
    /// fully triangularized).
    pub fn bump_dim(&self) -> usize {
        self.nb
    }

    /// Number of eta updates absorbed since the last factorization.
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// Solves `B·z = b`. On input `x` is row-indexed (`b`); on output it
    /// is slot-indexed (`z`, the basic components).
    pub fn ftran(&self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.m);
        self.solve_base(x);
        for eta in &self.etas {
            let zr = x[eta.slot] / eta.diag;
            if zr != 0.0 {
                for &(i, v) in &eta.vals {
                    x[i] -= v * zr;
                }
            }
            x[eta.slot] = zr;
        }
    }

    /// Solves `Bᵀ·y = c`. On input `x` is slot-indexed (`c_B`); on
    /// output it is row-indexed (`y`, the dual values).
    pub fn btran(&self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.m);
        for eta in self.etas.iter().rev() {
            let mut acc = x[eta.slot];
            for &(i, v) in &eta.vals {
                acc -= x[i] * v;
            }
            x[eta.slot] = acc / eta.diag;
        }
        self.solve_base_transpose(x);
    }

    /// Records a basis change: slot `slot`'s column was replaced by a
    /// column whose FTRAN image is the slot-indexed dense vector `w`.
    /// Returns `false` (and records nothing) when the pivot `w[slot]`
    /// is too small — the caller must refactorize instead.
    #[must_use]
    pub fn push_eta(&mut self, slot: usize, w: &[f64]) -> bool {
        debug_assert_eq!(w.len(), self.m);
        let diag = w[slot];
        if diag.abs() <= SINGULAR_EPS {
            return false;
        }
        let vals: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != slot && v.abs() > ETA_DROP_EPS)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta { slot, vals, diag });
        true
    }

    /// `B₀·z = b` (no etas): permute, solve the bump, back-substitute
    /// the triangular block.
    // Index loops mirror the textbook LU recurrences over the row-major
    // `bump` (stride arithmetic an iterator form would bury).
    #[allow(clippy::needless_range_loop)]
    fn solve_base(&self, x: &mut [f64]) {
        let m = self.m;
        let (t, nb) = (self.t, self.nb);
        let mut p = vec![0.0; m];
        for (k, &r) in self.row_of.iter().enumerate() {
            p[k] = x[r];
        }
        // Bump block: L·U·z₂ = p₂ with partial-pivot swaps.
        if nb > 0 {
            let z2 = &mut p[t..];
            for k in 0..nb {
                z2.swap(k, self.ipiv[k]);
            }
            for k in 0..nb {
                let zk = z2[k];
                if zk != 0.0 {
                    for i in k + 1..nb {
                        z2[i] -= self.bump[i * nb + k] * zk;
                    }
                }
            }
            for k in (0..nb).rev() {
                let mut acc = z2[k];
                for j in k + 1..nb {
                    acc -= self.bump[k * nb + j] * z2[j];
                }
                z2[k] = acc / self.bump[k * nb + k];
            }
            // Substitute the coupling block U12·z₂ out of the
            // triangular right-hand side.
            for (j, col) in self.u12.iter().enumerate() {
                let zj = p[t + j];
                if zj != 0.0 {
                    for &(i, v) in col {
                        p[i] -= v * zj;
                    }
                }
            }
        }
        // Triangular back-substitution (positions t-1 .. 0).
        for k in (0..t).rev() {
            let zk = p[k] / self.tri[k].diag;
            p[k] = zk;
            if zk != 0.0 {
                for &(i, v) in &self.tri[k].above {
                    p[i] -= v * zk;
                }
            }
        }
        // Emit by slot.
        for (k, &s) in self.col_of.iter().enumerate() {
            x[s] = p[k];
        }
    }

    /// `B₀ᵀ·y = c` (no etas): permute by slot, forward-solve U11ᵀ,
    /// solve the bump transpose, emit by row.
    #[allow(clippy::needless_range_loop)] // see solve_base
    fn solve_base_transpose(&self, x: &mut [f64]) {
        let m = self.m;
        let (t, nb) = (self.t, self.nb);
        let mut p = vec![0.0; m];
        for (k, &s) in self.col_of.iter().enumerate() {
            p[k] = x[s];
        }
        // U11ᵀ is lower triangular: forward substitution.
        for k in 0..t {
            let mut acc = p[k];
            for &(i, v) in &self.tri[k].above {
                acc -= v * p[i];
            }
            p[k] = acc / self.tri[k].diag;
        }
        if nb > 0 {
            // Couple the solved triangular part into the bump RHS.
            for (j, col) in self.u12.iter().enumerate() {
                let mut acc = p[t + j];
                for &(i, v) in col {
                    acc -= v * p[i];
                }
                p[t + j] = acc;
            }
            // (L·U)ᵀ·y₂ = rhs₂: solve Uᵀ (forward), then Lᵀ (backward),
            // then undo the row swaps in reverse.
            let y2 = &mut p[t..];
            for k in 0..nb {
                let mut acc = y2[k];
                for i in 0..k {
                    acc -= self.bump[i * nb + k] * y2[i];
                }
                y2[k] = acc / self.bump[k * nb + k];
            }
            for k in (0..nb).rev() {
                let mut acc = y2[k];
                for i in k + 1..nb {
                    acc -= self.bump[i * nb + k] * y2[i];
                }
                y2[k] = acc;
            }
            for k in (0..nb).rev() {
                y2.swap(k, self.ipiv[k]);
            }
        }
        for (k, &r) in self.row_of.iter().enumerate() {
            x[r] = p[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for reproducible random matrices.
    struct Rng(u64);
    impl Rng {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn dense_mul(m: usize, cols: &[Vec<(usize, f64)>], x_by_slot: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; m];
        for (s, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                out[r] += v * x_by_slot[s];
            }
        }
        out
    }

    fn dense_mul_t(m: usize, cols: &[Vec<(usize, f64)>], y_by_row: &[f64]) -> Vec<f64> {
        (0..m)
            .map(|s| cols[s].iter().map(|&(r, v)| v * y_by_row[r]).sum())
            .collect()
    }

    fn check_roundtrip(m: usize, cols: &[Vec<(usize, f64)>]) {
        let f = BasisFactorization::factor(m, cols).expect("nonsingular");
        let mut rng = Rng(42);
        let z_true: Vec<f64> = (0..m).map(|_| rng.next_f64() * 4.0 - 2.0).collect();
        // FTRAN: b = B z  ⇒  ftran(b) == z.
        let mut b = dense_mul(m, cols, &z_true);
        f.ftran(&mut b);
        for (a, e) in b.iter().zip(&z_true) {
            assert!((a - e).abs() < 1e-9, "ftran mismatch: {a} vs {e}");
        }
        // BTRAN: c = Bᵀ y  ⇒  btran(c) == y.
        let y_true: Vec<f64> = (0..m).map(|_| rng.next_f64() * 4.0 - 2.0).collect();
        let mut c = dense_mul_t(m, cols, &y_true);
        f.btran(&mut c);
        for (a, e) in c.iter().zip(&y_true) {
            assert!((a - e).abs() < 1e-9, "btran mismatch: {a} vs {e}");
        }
    }

    #[test]
    fn identity_and_permutation() {
        check_roundtrip(
            4,
            &[
                vec![(0, 1.0)],
                vec![(1, 1.0)],
                vec![(2, 1.0)],
                vec![(3, 1.0)],
            ],
        );
        check_roundtrip(3, &[vec![(2, 1.0)], vec![(0, -1.0)], vec![(1, 2.0)]]);
    }

    #[test]
    fn slack_heavy_basis_has_no_bump() {
        // 5 unit columns and one structural column: fully triangular.
        let cols = vec![
            vec![(0, 1.0)],
            vec![(1, 1.0)],
            vec![(2, 2.0), (0, 1.0), (4, -1.0)],
            vec![(3, 1.0)],
            vec![(4, 1.0)],
        ];
        let f = BasisFactorization::factor(5, &cols).expect("nonsingular");
        assert_eq!(f.bump_dim(), 0);
        check_roundtrip(5, &cols);
    }

    #[test]
    fn dense_random_basis_roundtrips() {
        let mut rng = Rng(7);
        for trial in 0..20 {
            let m = 2 + (trial % 7);
            let cols: Vec<Vec<(usize, f64)>> = (0..m)
                .map(|s| {
                    (0..m)
                        .filter_map(|r| {
                            let v = rng.next_f64() * 2.0 - 1.0;
                            // Diagonal dominance keeps it honestly nonsingular.
                            let v = if r == s { v + 3.0 } else { v };
                            (v.abs() > 0.3 || r == s).then_some((r, v))
                        })
                        .collect()
                })
                .collect();
            check_roundtrip(m, &cols);
        }
    }

    #[test]
    fn singular_basis_is_rejected() {
        // Two identical columns.
        let cols = vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 1.0), (1, 1.0)]];
        assert!(BasisFactorization::factor(2, &cols).is_none());
    }

    #[test]
    fn zero_dimensional_basis() {
        let f = BasisFactorization::factor(0, &[]).expect("empty basis is trivially factored");
        assert_eq!(f.dim(), 0);
        f.ftran(&mut []);
        f.btran(&mut []);
    }

    #[test]
    fn eta_updates_match_refactorization() {
        // Start from a basis, replace a column via push_eta, and verify
        // solves match a from-scratch factorization of the new basis.
        let mut cols = vec![
            vec![(0, 1.0)],
            vec![(1, 2.0), (0, 1.0)],
            vec![(2, 1.0), (1, -1.0)],
        ];
        let mut f = BasisFactorization::factor(3, &cols).expect("nonsingular");
        // New column to put in slot 1.
        let newcol = vec![(0, 0.5), (1, 1.0), (2, 2.0)];
        let mut w = vec![0.0; 3];
        for &(r, v) in &newcol {
            w[r] = v;
        }
        f.ftran(&mut w);
        assert!(f.push_eta(1, &w));
        assert_eq!(f.eta_count(), 1);
        cols[1] = newcol;
        let fresh = BasisFactorization::factor(3, &cols).expect("nonsingular");
        let mut rng = Rng(99);
        for _ in 0..5 {
            let b: Vec<f64> = (0..3).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
            let (mut z1, mut z2) = (b.clone(), b.clone());
            f.ftran(&mut z1);
            fresh.ftran(&mut z2);
            for (a, e) in z1.iter().zip(&z2) {
                assert!((a - e).abs() < 1e-9, "eta ftran mismatch: {a} vs {e}");
            }
            let (mut y1, mut y2) = (b.clone(), b);
            f.btran(&mut y1);
            fresh.btran(&mut y2);
            for (a, e) in y1.iter().zip(&y2) {
                assert!((a - e).abs() < 1e-9, "eta btran mismatch: {a} vs {e}");
            }
        }
    }

    #[test]
    fn tiny_eta_pivot_is_refused() {
        let mut f =
            BasisFactorization::factor(2, &[vec![(0, 1.0)], vec![(1, 1.0)]]).expect("identity");
        let w = vec![1.0, 1e-13];
        assert!(!f.push_eta(1, &w));
        assert_eq!(f.eta_count(), 0);
    }
}
