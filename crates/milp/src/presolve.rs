//! Presolve: problem reductions applied before the simplex/branch-and-bound.
//!
//! Three classic, always-safe reductions run to a fixpoint:
//!
//! 1. **Singleton rows** (`a·x ⋈ b` with one variable) become bound
//!    updates and are dropped.
//! 2. **Fixed variables** (`lb == ub`) are substituted into every row and
//!    removed from the model.
//! 3. **Empty rows** are checked for consistency and dropped (an
//!    inconsistent one proves infeasibility without any simplex work).
//!
//! The result keeps a mapping back to the original variable space so the
//! reduced model's solution can be [`PresolveResult::restore`]d. The
//! reductions preserve the optimal objective exactly; the property tests
//! verify `solve(presolve(m)) == solve(m)` on random integer programs.

use crate::error::SolveError;
use crate::model::{ConstraintOp, Model, VarId, VarType};
use crate::INT_TOL;

/// Outcome of presolving a model.
#[derive(Debug, Clone)]
pub struct PresolveResult {
    /// The reduced model (possibly identical to the input).
    pub reduced: Model,
    /// For each reduced-model variable, the original variable it maps to.
    pub kept: Vec<VarId>,
    /// Original variables eliminated by fixing, with their values.
    pub fixed: Vec<(VarId, f64)>,
    /// Number of constraints removed.
    pub dropped_rows: usize,
    /// Total number of original variables.
    original_vars: usize,
}

impl PresolveResult {
    /// Lifts a reduced-model solution vector back to the original
    /// variable space.
    pub fn restore(&self, reduced_values: &[f64]) -> Vec<f64> {
        assert_eq!(reduced_values.len(), self.kept.len(), "solution size");
        let mut out = vec![0.0; self.original_vars];
        for (&orig, &v) in self.kept.iter().zip(reduced_values) {
            out[orig.index()] = v;
        }
        for &(orig, v) in &self.fixed {
            out[orig.index()] = v;
        }
        out
    }
}

/// Applies the reductions to a fixpoint. Returns
/// [`SolveError::Infeasible`] when a reduction proves infeasibility.
pub fn presolve(model: &Model) -> Result<PresolveResult, SolveError> {
    model.validate()?;
    // Working copies of bounds and rows in the ORIGINAL variable space.
    let mut lb: Vec<f64> = model.variables().iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = model.variables().iter().map(|v| v.ub).collect();
    let is_int: Vec<bool> = model
        .variables()
        .iter()
        .map(|v| matches!(v.var_type, VarType::Integer | VarType::Binary))
        .collect();
    #[derive(Clone)]
    struct Row {
        name: String,
        terms: Vec<(usize, f64)>,
        op: ConstraintOp,
        rhs: f64,
        alive: bool,
    }
    let mut rows: Vec<Row> = model
        .constraints()
        .iter()
        .map(|c| Row {
            name: c.name.clone(),
            terms: c.terms.iter().map(|&(v, co)| (v.index(), co)).collect(),
            op: c.op,
            rhs: c.rhs,
            alive: true,
        })
        .collect();
    let mut fixed_value: Vec<Option<f64>> = vec![None; model.num_vars()];
    let tol = 1e-9;

    let mut changed = true;
    while changed {
        changed = false;

        // Integer bound rounding + fixed-variable detection.
        for i in 0..lb.len() {
            if fixed_value[i].is_some() {
                continue;
            }
            if is_int[i] {
                let rl = if lb[i].is_finite() {
                    (lb[i] - INT_TOL).ceil()
                } else {
                    lb[i]
                };
                let ru = if ub[i].is_finite() {
                    (ub[i] + INT_TOL).floor()
                } else {
                    ub[i]
                };
                if rl != lb[i] || ru != ub[i] {
                    lb[i] = rl;
                    ub[i] = ru;
                    changed = true;
                }
            }
            if lb[i] > ub[i] + tol {
                return Err(SolveError::Infeasible);
            }
            if (ub[i] - lb[i]).abs() <= tol {
                fixed_value[i] = Some(lb[i]);
                changed = true;
            }
        }

        // Substitute fixed variables into rows; handle singleton/empty rows.
        for row in rows.iter_mut().filter(|r| r.alive) {
            // Substitution.
            let before = row.terms.len();
            let mut rhs = row.rhs;
            row.terms.retain(|&(v, co)| {
                if let Some(x) = fixed_value[v] {
                    rhs -= co * x;
                    false
                } else {
                    true
                }
            });
            if row.terms.len() != before {
                row.rhs = rhs;
                changed = true;
            }

            match row.terms.as_slice() {
                [] => {
                    // Empty row: verify and drop.
                    let ok = match row.op {
                        ConstraintOp::Le => 0.0 <= row.rhs + tol,
                        ConstraintOp::Ge => 0.0 >= row.rhs - tol,
                        ConstraintOp::Eq => row.rhs.abs() <= tol,
                    };
                    if !ok {
                        return Err(SolveError::Infeasible);
                    }
                    row.alive = false;
                    changed = true;
                }
                &[(v, co)] if co.abs() > tol => {
                    // Singleton row: fold into the variable's bounds.
                    let bound = row.rhs / co;
                    let op = if co > 0.0 {
                        row.op
                    } else {
                        match row.op {
                            ConstraintOp::Le => ConstraintOp::Ge,
                            ConstraintOp::Ge => ConstraintOp::Le,
                            ConstraintOp::Eq => ConstraintOp::Eq,
                        }
                    };
                    match op {
                        ConstraintOp::Le => {
                            if bound < ub[v] {
                                ub[v] = bound;
                                changed = true;
                            }
                        }
                        ConstraintOp::Ge => {
                            if bound > lb[v] {
                                lb[v] = bound;
                                changed = true;
                            }
                        }
                        ConstraintOp::Eq => {
                            if bound < lb[v] - tol || bound > ub[v] + tol {
                                return Err(SolveError::Infeasible);
                            }
                            lb[v] = bound;
                            ub[v] = bound;
                            changed = true;
                        }
                    }
                    row.alive = false;
                }
                _ => {}
            }
        }
    }

    // Assemble the reduced model.
    let mut reduced = Model::new(format!("{}:presolved", model.name), model.sense);
    let mut kept: Vec<VarId> = Vec::new();
    let mut new_id: Vec<Option<VarId>> = vec![None; model.num_vars()];
    for (i, v) in model.variables().iter().enumerate() {
        if fixed_value[i].is_some() {
            continue;
        }
        let id = reduced.add_var(v.name.clone(), v.var_type, lb[i], ub[i]);
        new_id[i] = Some(id);
        kept.push(VarId::from_index(i));
    }
    let mut dropped_rows = 0;
    for row in &rows {
        if !row.alive {
            dropped_rows += 1;
            continue;
        }
        let terms: Vec<(VarId, f64)> = row
            .terms
            .iter()
            .map(|&(v, co)| (new_id[v].expect("unfixed var kept"), co))
            .collect();
        reduced.add_constraint(row.name.clone(), terms, row.op, row.rhs);
    }
    // Objective: substitute fixed variables into the constant.
    let mut obj_terms: Vec<(VarId, f64)> = Vec::new();
    let mut obj_const = model.objective_constant();
    for &(v, co) in model.objective() {
        match fixed_value[v.index()] {
            Some(x) => obj_const += co * x,
            None => obj_terms.push((new_id[v.index()].expect("kept"), co)),
        }
    }
    reduced.set_objective(obj_terms, obj_const);

    let fixed = fixed_value
        .iter()
        .enumerate()
        .filter_map(|(i, x)| x.map(|x| (VarId::from_index(i), x)))
        .collect();
    Ok(PresolveResult {
        reduced,
        kept,
        fixed,
        dropped_rows,
        original_vars: model.num_vars(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LpSolver, MipSolver, Sense};

    #[test]
    fn singleton_rows_become_bounds() {
        let mut m = Model::new("s", Sense::Maximize);
        let x = m.add_cont("x", 0.0, 100.0);
        let y = m.add_cont("y", 0.0, 100.0);
        m.add_constraint("cx", vec![(x, 2.0)], ConstraintOp::Le, 10.0); // x <= 5
        m.add_constraint("cy", vec![(y, -1.0)], ConstraintOp::Le, -3.0); // y >= 3
        m.add_constraint("joint", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 20.0);
        m.set_objective(vec![(x, 1.0), (y, 1.0)], 0.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.reduced.num_constraints(), 1);
        assert_eq!(p.dropped_rows, 2);
        let v = &p.reduced.variables()[0];
        assert_eq!((v.lb, v.ub), (0.0, 5.0));
        let w = &p.reduced.variables()[1];
        assert_eq!((w.lb, w.ub), (3.0, 100.0));
    }

    #[test]
    fn fixed_variables_are_substituted() {
        let mut m = Model::new("f", Sense::Minimize);
        let x = m.add_cont("x", 7.0, 7.0); // fixed
        let y = m.add_cont("y", 0.0, 100.0);
        m.add_constraint("c", vec![(x, 2.0), (y, 1.0)], ConstraintOp::Ge, 20.0);
        m.set_objective(vec![(x, 3.0), (y, 1.0)], 0.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.reduced.num_vars(), 1);
        assert_eq!(p.fixed, vec![(x, 7.0)]);
        // Row became y >= 6 (singleton) and was folded into bounds.
        assert_eq!(p.reduced.num_constraints(), 0);
        assert_eq!(p.reduced.variables()[0].lb, 6.0);
        // Objective constant absorbed 3 * 7.
        assert_eq!(p.reduced.objective_constant(), 21.0);
        let _ = y;
    }

    #[test]
    fn detects_infeasible_singleton_chain() {
        let mut m = Model::new("inf", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        m.add_constraint("lo", vec![(x, 1.0)], ConstraintOp::Ge, 8.0);
        m.add_constraint("hi", vec![(x, 1.0)], ConstraintOp::Le, 3.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        assert_eq!(presolve(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn detects_empty_row_contradiction() {
        let mut m = Model::new("empty", Sense::Minimize);
        let x = m.add_cont("x", 2.0, 2.0); // fixed at 2
        m.add_constraint("c", vec![(x, 1.0)], ConstraintOp::Ge, 5.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        assert_eq!(presolve(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn integer_bounds_round_inward() {
        let mut m = Model::new("int", Sense::Maximize);
        let x = m.add_var("x", VarType::Integer, 0.3, 4.7);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let p = presolve(&m).unwrap();
        let v = &p.reduced.variables()[0];
        assert_eq!((v.lb, v.ub), (1.0, 4.0));
    }

    #[test]
    fn restore_reassembles_full_solution() {
        let mut m = Model::new("r", Sense::Maximize);
        let x = m.add_cont("x", 5.0, 5.0); // fixed
        let y = m.add_cont("y", 0.0, 10.0);
        let z = m.add_cont("z", 0.0, 10.0);
        m.add_constraint("c", vec![(y, 1.0), (z, 1.0)], ConstraintOp::Le, 8.0);
        m.set_objective(vec![(x, 1.0), (y, 2.0), (z, 1.0)], 0.0);
        let p = presolve(&m).unwrap();
        let sol = LpSolver::default().solve(&p.reduced).unwrap();
        let full = p.restore(&sol.values);
        assert_eq!(full.len(), 3);
        assert_eq!(full[x.index()], 5.0);
        assert!(m.is_feasible(&full, 1e-7));
        // Total objective including the fixed part.
        let obj = m.eval_objective(&full);
        assert!((obj - (5.0 + 16.0)).abs() < 1e-9, "obj {obj}");
    }

    #[test]
    fn presolved_milp_preserves_optimum() {
        // max 10a + 13b + 7c with a forced and a bounded-away variable.
        let mut m = Model::new("mip", Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint("force_a", vec![(a, 1.0)], ConstraintOp::Ge, 1.0);
        m.add_constraint(
            "w",
            vec![(a, 3.0), (b, 4.0), (c, 2.0)],
            ConstraintOp::Le,
            6.0,
        );
        m.set_objective(vec![(a, 10.0), (b, 13.0), (c, 7.0)], 0.0);
        let direct = MipSolver::default().solve(&m).unwrap();
        let p = presolve(&m).unwrap();
        assert!(p.reduced.num_vars() < 3, "a should be fixed by presolve");
        let reduced_sol = MipSolver::default().solve(&p.reduced).unwrap();
        let full = p.restore(&reduced_sol.values);
        let obj = m.eval_objective(&full);
        assert!((obj - direct.objective).abs() < 1e-9);
        assert!(m.is_feasible(&full, 1e-6));
    }

    #[test]
    fn noop_on_irreducible_models() {
        let mut m = Model::new("noop", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        let y = m.add_cont("y", 0.0, 10.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 2.0)], ConstraintOp::Ge, 4.0);
        m.set_objective(vec![(x, 1.0), (y, 1.0)], 0.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.reduced.num_vars(), 2);
        assert_eq!(p.reduced.num_constraints(), 1);
        assert_eq!(p.dropped_rows, 0);
    }
}
