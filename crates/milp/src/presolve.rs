//! Presolve: problem reductions applied before the simplex/branch-and-bound.
//!
//! Four classic, always-safe reductions run to a fixpoint:
//!
//! 1. **Singleton rows** (`a·x ⋈ b` with one variable) become bound
//!    updates and are dropped.
//! 2. **Fixed variables** (`lb == ub`) are substituted into every row and
//!    removed from the model.
//! 3. **Empty rows** are checked for consistency and dropped (an
//!    inconsistent one proves infeasibility without any simplex work).
//! 4. **Activity-based bound propagation** across multi-term rows: each
//!    row's minimum activity implies a bound on every participating
//!    variable (e.g. the big-M row `q − u·z ≤ 0` with `z ∈ [0, 1]`
//!    implies `q ≤ u`). See [`propagate_bounds`], which is also exposed
//!    standalone for the branch-and-bound root and the model linter.
//!
//! The result keeps a mapping back to the original variable space so the
//! reduced model's solution can be [`PresolveResult::restore`]d. The
//! reductions preserve the optimal objective exactly; the property tests
//! verify `solve(presolve(m)) == solve(m)` on random integer programs.

use crate::error::SolveError;
use crate::model::{ConstraintOp, Model, VarId, VarType};
use crate::INT_TOL;

/// Cap on propagation sweeps: geometric bound chains (`x ≤ αy`, `y ≤ αx`)
/// converge but can take many rounds; the cap keeps presolve O(rows).
const PROP_MAX_ROUNDS: usize = 32;

/// Relative improvement a propagated bound must achieve to be applied.
/// Doubles as the safety slack added to continuous tightenings so float
/// round-off in the activity sums can never cut off the true optimum.
const PROP_EPS: f64 = 1e-7;

/// Outcome of presolving a model.
#[derive(Debug, Clone)]
pub struct PresolveResult {
    /// The reduced model (possibly identical to the input).
    pub reduced: Model,
    /// For each reduced-model variable, the original variable it maps to.
    pub kept: Vec<VarId>,
    /// Original variables eliminated by fixing, with their values.
    pub fixed: Vec<(VarId, f64)>,
    /// Number of constraints removed.
    pub dropped_rows: usize,
    /// Bound tightenings contributed by activity-based propagation
    /// (beyond singleton-row folds and integer rounding).
    pub propagated: usize,
    /// Total number of original variables.
    original_vars: usize,
}

impl PresolveResult {
    /// Lifts a reduced-model solution vector back to the original
    /// variable space.
    pub fn restore(&self, reduced_values: &[f64]) -> Vec<f64> {
        assert_eq!(reduced_values.len(), self.kept.len(), "solution size");
        let mut out = vec![0.0; self.original_vars];
        for (&orig, &v) in self.kept.iter().zip(reduced_values) {
            out[orig.index()] = v;
        }
        for &(orig, v) in &self.fixed {
            out[orig.index()] = v;
        }
        out
    }
}

/// Outcome of standalone activity-based bound propagation
/// ([`propagate_bounds`]).
#[derive(Debug, Clone)]
pub struct Propagation {
    /// Propagated `(lb, ub)` per variable, indexed by [`VarId::index`].
    /// Always at least as tight as the model's declared bounds; integer
    /// bounds are rounded inward.
    pub bounds: Vec<(f64, f64)>,
    /// Individual bound tightenings applied (beyond integer rounding).
    pub tightened: usize,
    /// Sweeps over the rows until the fixpoint (or the round cap).
    pub rounds: usize,
}

/// Rewrites a constraint as one or two `≤` rows over variable *indices*
/// (`Ge` is negated, `Eq` contributes both directions) so the propagation
/// pass only ever reasons about minimum activity against an upper bound.
fn le_normalized(
    out: &mut Vec<(Vec<(usize, f64)>, f64)>,
    terms: &[(usize, f64)],
    op: ConstraintOp,
    rhs: f64,
) {
    let negated = || terms.iter().map(|&(v, c)| (v, -c)).collect::<Vec<_>>();
    match op {
        ConstraintOp::Le => out.push((terms.to_vec(), rhs)),
        ConstraintOp::Ge => out.push((negated(), -rhs)),
        ConstraintOp::Eq => {
            out.push((terms.to_vec(), rhs));
            out.push((negated(), -rhs));
        }
    }
}

/// One propagation sweep: for every `≤`-row, the row's minimum activity
/// with one variable removed bounds that variable. Returns whether any
/// bound was tightened; `Err(Infeasible)` when a variable's domain
/// empties (a static infeasibility proof — no simplex ran).
fn propagate_pass(
    rows: &[(Vec<(usize, f64)>, f64)],
    lb: &mut [f64],
    ub: &mut [f64],
    is_int: &[bool],
    tightened: &mut usize,
) -> Result<bool, SolveError> {
    let tol = 1e-9;
    let mut changed = false;
    for (terms, rhs) in rows {
        // Minimum activity split into its finite part and the number of
        // −∞ contributions: with two or more, no variable's residual is
        // finite and the row propagates nothing.
        let mut finite_sum = 0.0;
        let mut neg_inf = 0usize;
        for &(j, a) in terms {
            let mc = if a > 0.0 { a * lb[j] } else { a * ub[j] };
            if mc == f64::NEG_INFINITY {
                neg_inf += 1;
            } else {
                finite_sum += mc;
            }
        }
        if neg_inf > 1 || !finite_sum.is_finite() {
            continue;
        }
        for &(j, a) in terms {
            if a == 0.0 {
                continue;
            }
            let mc = if a > 0.0 { a * lb[j] } else { a * ub[j] };
            let residual = if mc == f64::NEG_INFINITY {
                finite_sum // j owns the single infinite contribution
            } else if neg_inf > 0 {
                continue; // another variable's contribution is −∞
            } else {
                finite_sum - mc
            };
            // a·x_j ≤ rhs − residual.
            let bound = (rhs - residual) / a;
            if !bound.is_finite() {
                continue;
            }
            if a > 0.0 {
                let new_ub = if is_int[j] {
                    (bound + INT_TOL).floor()
                } else {
                    bound + PROP_EPS * bound.abs().max(1.0)
                };
                let improves = if ub[j].is_finite() {
                    new_ub < ub[j] - PROP_EPS * ub[j].abs().max(1.0)
                } else {
                    new_ub.is_finite()
                };
                if improves {
                    ub[j] = new_ub;
                    *tightened += 1;
                    changed = true;
                    if lb[j] > ub[j] + tol {
                        return Err(SolveError::Infeasible);
                    }
                }
            } else {
                let new_lb = if is_int[j] {
                    (bound - INT_TOL).ceil()
                } else {
                    bound - PROP_EPS * bound.abs().max(1.0)
                };
                let improves = if lb[j].is_finite() {
                    new_lb > lb[j] + PROP_EPS * lb[j].abs().max(1.0)
                } else {
                    new_lb.is_finite()
                };
                if improves {
                    lb[j] = new_lb;
                    *tightened += 1;
                    changed = true;
                    if lb[j] > ub[j] + tol {
                        return Err(SolveError::Infeasible);
                    }
                }
            }
        }
    }
    Ok(changed)
}

/// Activity-based bound propagation over the whole model, standalone.
///
/// Every returned bound is *implied* by the declared bounds plus the
/// constraints, so replacing the declared bounds with the propagated
/// ones changes neither the feasible set nor the optimum — it only
/// shrinks the LP relaxation. The branch-and-bound root uses this (see
/// [`crate::MipSolver::root_propagation`]) and the model linter reports
/// it as the `M007` static-infeasibility check.
///
/// Returns [`SolveError::Infeasible`] when propagation empties a
/// variable's domain: a proof of infeasibility with zero simplex work.
pub fn propagate_bounds(model: &Model) -> Result<Propagation, SolveError> {
    propagate_bounds_with(model, &model.var_bounds())
}

/// [`propagate_bounds`] from an explicit starting box instead of the
/// model's declared bounds. `bounds` must be at least as tight as the
/// declared bounds (a branch-and-bound node's box always is); the
/// returned bounds are implied by `bounds` plus the constraints, so a
/// node may substitute them for its own box without changing the set of
/// integer-feasible completions.
pub fn propagate_bounds_with(
    model: &Model,
    bounds: &[(f64, f64)],
) -> Result<Propagation, SolveError> {
    model.validate()?;
    debug_assert_eq!(bounds.len(), model.num_vars());
    let mut lb: Vec<f64> = bounds.iter().map(|&(l, _)| l).collect();
    let mut ub: Vec<f64> = bounds.iter().map(|&(_, u)| u).collect();
    let is_int: Vec<bool> = model
        .variables()
        .iter()
        .map(|v| matches!(v.var_type, VarType::Integer | VarType::Binary))
        .collect();
    // Integer bounds rounded inward first (not counted as tightenings).
    for j in 0..lb.len() {
        if is_int[j] {
            if lb[j].is_finite() {
                lb[j] = (lb[j] - INT_TOL).ceil();
            }
            if ub[j].is_finite() {
                ub[j] = (ub[j] + INT_TOL).floor();
            }
            if lb[j] > ub[j] {
                return Err(SolveError::Infeasible);
            }
        }
    }
    let mut rows = Vec::with_capacity(model.num_constraints());
    for c in model.constraints() {
        let terms: Vec<(usize, f64)> = c.terms.iter().map(|&(v, co)| (v.index(), co)).collect();
        le_normalized(&mut rows, &terms, c.op, c.rhs);
    }
    let mut tightened = 0usize;
    let mut rounds = 0usize;
    while rounds < PROP_MAX_ROUNDS
        && propagate_pass(&rows, &mut lb, &mut ub, &is_int, &mut tightened)?
    {
        rounds += 1;
    }
    Ok(Propagation {
        bounds: lb.into_iter().zip(ub).collect(),
        tightened,
        rounds,
    })
}

/// Applies the reductions to a fixpoint. Returns
/// [`SolveError::Infeasible`] when a reduction proves infeasibility.
pub fn presolve(model: &Model) -> Result<PresolveResult, SolveError> {
    model.validate()?;
    // Working copies of bounds and rows in the ORIGINAL variable space.
    let mut lb: Vec<f64> = model.variables().iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = model.variables().iter().map(|v| v.ub).collect();
    let is_int: Vec<bool> = model
        .variables()
        .iter()
        .map(|v| matches!(v.var_type, VarType::Integer | VarType::Binary))
        .collect();
    #[derive(Clone)]
    struct Row {
        name: String,
        terms: Vec<(usize, f64)>,
        op: ConstraintOp,
        rhs: f64,
        alive: bool,
    }
    let mut rows: Vec<Row> = model
        .constraints()
        .iter()
        .map(|c| Row {
            name: c.name.clone(),
            terms: c.terms.iter().map(|&(v, co)| (v.index(), co)).collect(),
            op: c.op,
            rhs: c.rhs,
            alive: true,
        })
        .collect();
    let mut fixed_value: Vec<Option<f64>> = vec![None; model.num_vars()];
    let tol = 1e-9;
    let mut prop_rounds = 0usize;
    let mut prop_tightened = 0usize;

    let mut changed = true;
    while changed {
        changed = false;

        // Integer bound rounding + fixed-variable detection.
        for i in 0..lb.len() {
            if fixed_value[i].is_some() {
                continue;
            }
            if is_int[i] {
                let rl = if lb[i].is_finite() {
                    (lb[i] - INT_TOL).ceil()
                } else {
                    lb[i]
                };
                let ru = if ub[i].is_finite() {
                    (ub[i] + INT_TOL).floor()
                } else {
                    ub[i]
                };
                if rl != lb[i] || ru != ub[i] {
                    lb[i] = rl;
                    ub[i] = ru;
                    changed = true;
                }
            }
            if lb[i] > ub[i] + tol {
                return Err(SolveError::Infeasible);
            }
            if (ub[i] - lb[i]).abs() <= tol {
                fixed_value[i] = Some(lb[i]);
                changed = true;
            }
        }

        // Substitute fixed variables into rows; handle singleton/empty rows.
        for row in rows.iter_mut().filter(|r| r.alive) {
            // Substitution.
            let before = row.terms.len();
            let mut rhs = row.rhs;
            row.terms.retain(|&(v, co)| {
                if let Some(x) = fixed_value[v] {
                    rhs -= co * x;
                    false
                } else {
                    true
                }
            });
            if row.terms.len() != before {
                row.rhs = rhs;
                changed = true;
            }

            match row.terms.as_slice() {
                [] => {
                    // Empty row: verify and drop.
                    let ok = match row.op {
                        ConstraintOp::Le => 0.0 <= row.rhs + tol,
                        ConstraintOp::Ge => 0.0 >= row.rhs - tol,
                        ConstraintOp::Eq => row.rhs.abs() <= tol,
                    };
                    if !ok {
                        return Err(SolveError::Infeasible);
                    }
                    row.alive = false;
                    changed = true;
                }
                &[(v, co)] if co.abs() > tol => {
                    // Singleton row: fold into the variable's bounds.
                    let bound = row.rhs / co;
                    let op = if co > 0.0 {
                        row.op
                    } else {
                        match row.op {
                            ConstraintOp::Le => ConstraintOp::Ge,
                            ConstraintOp::Ge => ConstraintOp::Le,
                            ConstraintOp::Eq => ConstraintOp::Eq,
                        }
                    };
                    match op {
                        ConstraintOp::Le => {
                            if bound < ub[v] {
                                ub[v] = bound;
                                changed = true;
                            }
                        }
                        ConstraintOp::Ge => {
                            if bound > lb[v] {
                                lb[v] = bound;
                                changed = true;
                            }
                        }
                        ConstraintOp::Eq => {
                            if bound < lb[v] - tol || bound > ub[v] + tol {
                                return Err(SolveError::Infeasible);
                            }
                            lb[v] = bound;
                            ub[v] = bound;
                            changed = true;
                        }
                    }
                    row.alive = false;
                }
                _ => {}
            }
        }

        // Activity-based bound propagation across the surviving
        // multi-term rows: tightened bounds feed the next iteration's
        // singleton/fixed-variable rules (a propagated `lb == ub` fixes
        // the variable on the following sweep).
        if prop_rounds < PROP_MAX_ROUNDS {
            let mut le_rows = Vec::new();
            for row in rows.iter().filter(|r| r.alive && r.terms.len() >= 2) {
                le_normalized(&mut le_rows, &row.terms, row.op, row.rhs);
            }
            if propagate_pass(&le_rows, &mut lb, &mut ub, &is_int, &mut prop_tightened)? {
                prop_rounds += 1;
                changed = true;
            }
        }
    }

    // Assemble the reduced model.
    let mut reduced = Model::new(format!("{}:presolved", model.name), model.sense);
    let mut kept: Vec<VarId> = Vec::new();
    let mut new_id: Vec<Option<VarId>> = vec![None; model.num_vars()];
    for (i, v) in model.variables().iter().enumerate() {
        if fixed_value[i].is_some() {
            continue;
        }
        let id = reduced.add_var(v.name.clone(), v.var_type, lb[i], ub[i]);
        new_id[i] = Some(id);
        kept.push(VarId::from_index(i));
    }
    let mut dropped_rows = 0;
    for row in &rows {
        if !row.alive {
            dropped_rows += 1;
            continue;
        }
        let terms: Vec<(VarId, f64)> = row
            .terms
            .iter()
            .map(|&(v, co)| (new_id[v].expect("unfixed var kept"), co)) // repolint-allow(unwrap): kept vars are renumbered
            .collect();
        reduced.add_constraint(row.name.clone(), terms, row.op, row.rhs);
    }
    // Objective: substitute fixed variables into the constant.
    let mut obj_terms: Vec<(VarId, f64)> = Vec::new();
    let mut obj_const = model.objective_constant();
    for &(v, co) in model.objective() {
        match fixed_value[v.index()] {
            Some(x) => obj_const += co * x,
            None => obj_terms.push((new_id[v.index()].expect("kept"), co)), // repolint-allow(unwrap): kept vars are renumbered
        }
    }
    reduced.set_objective(obj_terms, obj_const);

    let fixed = fixed_value
        .iter()
        .enumerate()
        .filter_map(|(i, x)| x.map(|x| (VarId::from_index(i), x)))
        .collect();
    Ok(PresolveResult {
        reduced,
        kept,
        fixed,
        dropped_rows,
        propagated: prop_tightened,
        original_vars: model.num_vars(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LpSolver, MipSolver, Sense};

    #[test]
    fn singleton_rows_become_bounds() {
        let mut m = Model::new("s", Sense::Maximize);
        let x = m.add_cont("x", 0.0, 100.0);
        let y = m.add_cont("y", 0.0, 100.0);
        m.add_constraint("cx", vec![(x, 2.0)], ConstraintOp::Le, 10.0); // x <= 5
        m.add_constraint("cy", vec![(y, -1.0)], ConstraintOp::Le, -3.0); // y >= 3
        m.add_constraint("joint", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 20.0);
        m.set_objective(vec![(x, 1.0), (y, 1.0)], 0.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.reduced.num_constraints(), 1);
        assert_eq!(p.dropped_rows, 2);
        let v = &p.reduced.variables()[0];
        assert_eq!((v.lb, v.ub), (0.0, 5.0));
        let w = &p.reduced.variables()[1];
        assert_eq!(w.lb, 3.0);
        // Propagation additionally bounds y through the joint row:
        // y <= 20 - min(x) = 20 (plus the continuous safety slack).
        assert!(w.ub >= 20.0 && w.ub < 20.01, "y ub {}", w.ub);
        assert!(p.propagated >= 1);
    }

    #[test]
    fn fixed_variables_are_substituted() {
        let mut m = Model::new("f", Sense::Minimize);
        let x = m.add_cont("x", 7.0, 7.0); // fixed
        let y = m.add_cont("y", 0.0, 100.0);
        m.add_constraint("c", vec![(x, 2.0), (y, 1.0)], ConstraintOp::Ge, 20.0);
        m.set_objective(vec![(x, 3.0), (y, 1.0)], 0.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.reduced.num_vars(), 1);
        assert_eq!(p.fixed, vec![(x, 7.0)]);
        // Row became y >= 6 (singleton) and was folded into bounds.
        assert_eq!(p.reduced.num_constraints(), 0);
        assert_eq!(p.reduced.variables()[0].lb, 6.0);
        // Objective constant absorbed 3 * 7.
        assert_eq!(p.reduced.objective_constant(), 21.0);
        let _ = y;
    }

    #[test]
    fn detects_infeasible_singleton_chain() {
        let mut m = Model::new("inf", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        m.add_constraint("lo", vec![(x, 1.0)], ConstraintOp::Ge, 8.0);
        m.add_constraint("hi", vec![(x, 1.0)], ConstraintOp::Le, 3.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        assert_eq!(presolve(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn detects_empty_row_contradiction() {
        let mut m = Model::new("empty", Sense::Minimize);
        let x = m.add_cont("x", 2.0, 2.0); // fixed at 2
        m.add_constraint("c", vec![(x, 1.0)], ConstraintOp::Ge, 5.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        assert_eq!(presolve(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn propagate_with_tighter_box_sees_node_bounds() {
        // x + y <= 6 with the model box [0, 10]^2: the declared bounds
        // propagate to x, y <= 6, but a node that already branched y >= 4
        // implies x <= 2 — visible only through the explicit-box entry
        // point.
        let mut m = Model::new("node", Sense::Maximize);
        let x = m.add_cont("x", 0.0, 10.0);
        let y = m.add_cont("y", 0.0, 10.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 6.0);
        m.set_objective(vec![(x, 1.0), (y, 1.0)], 0.0);
        let close = |got: (f64, f64), want: (f64, f64)| {
            assert!(
                (got.0 - want.0).abs() < 1e-5 && (got.1 - want.1).abs() < 1e-5,
                "{got:?} != {want:?}"
            );
        };
        let root = propagate_bounds(&m).unwrap();
        close(root.bounds[x.index()], (0.0, 6.0));
        let node = propagate_bounds_with(&m, &[(0.0, 10.0), (4.0, 10.0)]).unwrap();
        close(node.bounds[x.index()], (0.0, 2.0));
        close(node.bounds[y.index()], (4.0, 6.0));
    }

    #[test]
    fn integer_bounds_round_inward() {
        let mut m = Model::new("int", Sense::Maximize);
        let x = m.add_var("x", VarType::Integer, 0.3, 4.7);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let p = presolve(&m).unwrap();
        let v = &p.reduced.variables()[0];
        assert_eq!((v.lb, v.ub), (1.0, 4.0));
    }

    #[test]
    fn restore_reassembles_full_solution() {
        let mut m = Model::new("r", Sense::Maximize);
        let x = m.add_cont("x", 5.0, 5.0); // fixed
        let y = m.add_cont("y", 0.0, 10.0);
        let z = m.add_cont("z", 0.0, 10.0);
        m.add_constraint("c", vec![(y, 1.0), (z, 1.0)], ConstraintOp::Le, 8.0);
        m.set_objective(vec![(x, 1.0), (y, 2.0), (z, 1.0)], 0.0);
        let p = presolve(&m).unwrap();
        let sol = LpSolver::default().solve(&p.reduced).unwrap();
        let full = p.restore(&sol.values);
        assert_eq!(full.len(), 3);
        assert_eq!(full[x.index()], 5.0);
        assert!(m.is_feasible(&full, 1e-7));
        // Total objective including the fixed part.
        let obj = m.eval_objective(&full);
        assert!((obj - (5.0 + 16.0)).abs() < 1e-9, "obj {obj}");
    }

    #[test]
    fn restore_mixes_fixed_kept_and_singleton_bounded_vars() {
        // Four variables exercising every restore path at once: one fixed
        // by declaration, one fixed by an equality singleton row, one
        // whose bounds come from a folded singleton row, one untouched.
        let mut m = Model::new("mix", Sense::Maximize);
        let a = m.add_cont("a", 2.0, 2.0); // fixed by bounds
        let b = m.add_cont("b", 0.0, 50.0); // fixed by the eq row below
        let c = m.add_cont("c", 0.0, 100.0); // singleton-bounded to <= 9
        let d = m.add_var("d", VarType::Integer, 0.0, 6.0); // kept
        m.add_constraint("fix_b", vec![(b, 3.0)], ConstraintOp::Eq, 12.0); // b = 4
        m.add_constraint("cap_c", vec![(c, 2.0)], ConstraintOp::Le, 18.0); // c <= 9
        m.add_constraint(
            "joint",
            vec![(a, 1.0), (b, 1.0), (c, 1.0), (d, 1.0)],
            ConstraintOp::Le,
            17.0,
        );
        m.set_objective(vec![(a, 1.0), (b, 1.0), (c, 2.0), (d, 3.0)], 0.0);
        let p = presolve(&m).unwrap();
        // a and b were eliminated; c and d survive with folded bounds.
        assert_eq!(p.reduced.num_vars(), 2);
        let mut fixed = p.fixed.clone();
        fixed.sort_by_key(|&(v, _)| v.index());
        assert_eq!(fixed, vec![(a, 2.0), (b, 4.0)]);
        assert_eq!(p.kept, vec![c, d]);
        let sol = MipSolver::default().solve(&p.reduced).unwrap();
        let full = p.restore(&sol.values);
        assert_eq!(full.len(), 4);
        assert_eq!(full[a.index()], 2.0);
        assert_eq!(full[b.index()], 4.0);
        assert!(m.is_feasible(&full, 1e-6));
        // Direct solve agrees with solve-reduced-then-restore.
        let direct = MipSolver::default().solve(&m).unwrap();
        assert!((m.eval_objective(&full) - direct.objective).abs() < 1e-9);
    }

    #[test]
    fn presolved_milp_preserves_optimum() {
        // max 10a + 13b + 7c with a forced and a bounded-away variable.
        let mut m = Model::new("mip", Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint("force_a", vec![(a, 1.0)], ConstraintOp::Ge, 1.0);
        m.add_constraint(
            "w",
            vec![(a, 3.0), (b, 4.0), (c, 2.0)],
            ConstraintOp::Le,
            6.0,
        );
        m.set_objective(vec![(a, 10.0), (b, 13.0), (c, 7.0)], 0.0);
        let direct = MipSolver::default().solve(&m).unwrap();
        let p = presolve(&m).unwrap();
        assert!(p.reduced.num_vars() < 3, "a should be fixed by presolve");
        let reduced_sol = MipSolver::default().solve(&p.reduced).unwrap();
        let full = p.restore(&reduced_sol.values);
        let obj = m.eval_objective(&full);
        assert!((obj - direct.objective).abs() < 1e-9);
        assert!(m.is_feasible(&full, 1e-6));
    }

    #[test]
    fn propagation_tightens_big_m_row() {
        // q - 400 z <= 0 with z binary implies q <= 400, far below q's
        // declared ub of 1000 (the step-price level rows have exactly
        // this shape).
        let mut m = Model::new("bigm", Sense::Maximize);
        let q = m.add_cont("q", 0.0, 1000.0);
        let z = m.add_binary("z");
        m.add_constraint("lvl_hi", vec![(q, 1.0), (z, -400.0)], ConstraintOp::Le, 0.0);
        m.set_objective(vec![(q, 1.0)], 0.0);
        let prop = propagate_bounds(&m).unwrap();
        assert!(prop.tightened >= 1);
        let (_, qu) = prop.bounds[q.index()];
        assert!(qu <= 400.0 + 1e-3, "q ub {qu} not tightened to 400");
    }

    #[test]
    fn propagation_proves_infeasibility_statically() {
        // x + y >= 25 with x <= 10, y <= 10 can never hold.
        let mut m = Model::new("inf", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        let y = m.add_cont("y", 0.0, 10.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 25.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        assert_eq!(propagate_bounds(&m).unwrap_err(), SolveError::Infeasible);
        // presolve reaches the same verdict through its propagation rule.
        assert_eq!(presolve(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn propagation_derives_finite_bounds_from_infinite_domains() {
        // x free, x + y <= 8 with y >= 3  =>  x <= 5.
        let mut m = Model::new("free", Sense::Maximize);
        let x = m.add_cont("x", f64::NEG_INFINITY, f64::INFINITY);
        let y = m.add_cont("y", 3.0, 100.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 8.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let prop = propagate_bounds(&m).unwrap();
        let (_, xu) = prop.bounds[x.index()];
        assert!((xu - 5.0).abs() < 1e-3, "x ub {xu}");
        // y's contribution stays -inf-free; x's lb is still -inf (no row
        // bounds it from below).
        assert_eq!(prop.bounds[x.index()].0, f64::NEG_INFINITY);
    }

    #[test]
    fn propagation_rounds_integer_bounds() {
        // 3k <= 10 with k integer  =>  k <= 3.
        let mut m = Model::new("int", Sense::Maximize);
        let k = m.add_var("k", VarType::Integer, 0.0, 100.0);
        let x = m.add_cont("x", 0.0, 1.0);
        m.add_constraint("c", vec![(k, 3.0), (x, 1.0)], ConstraintOp::Le, 10.0);
        m.set_objective(vec![(k, 1.0)], 0.0);
        let prop = propagate_bounds(&m).unwrap();
        assert_eq!(prop.bounds[k.index()].1, 3.0);
    }

    #[test]
    fn propagation_preserves_milp_optimum() {
        use crate::MipSolver;
        // Same big-M structure the optimizers build; solving with and
        // without root propagation must agree exactly.
        let mut m = Model::new("opt", Sense::Minimize);
        let q0 = m.add_cont("q0", 0.0, 500.0);
        let q1 = m.add_cont("q1", 0.0, 500.0);
        let z0 = m.add_binary("z0");
        let z1 = m.add_binary("z1");
        m.add_constraint("hi0", vec![(q0, 1.0), (z0, -200.0)], ConstraintOp::Le, 0.0);
        m.add_constraint("hi1", vec![(q1, 1.0), (z1, -450.0)], ConstraintOp::Le, 0.0);
        m.add_constraint("lo1", vec![(q1, 1.0), (z1, -200.0)], ConstraintOp::Ge, 0.0);
        m.add_constraint("one", vec![(z0, 1.0), (z1, 1.0)], ConstraintOp::Eq, 1.0);
        m.add_constraint("dem", vec![(q0, 1.0), (q1, 1.0)], ConstraintOp::Ge, 180.0);
        m.set_objective(vec![(q0, 30.0), (q1, 45.0)], 0.0);
        let with = MipSolver::default().solve(&m).unwrap();
        let without = MipSolver {
            root_propagation: false,
            ..Default::default()
        }
        .solve(&m)
        .unwrap();
        assert_eq!(with.objective, without.objective);
        assert!(m.is_feasible(&with.values, 1e-6));
    }

    #[test]
    fn noop_on_irreducible_models() {
        let mut m = Model::new("noop", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        let y = m.add_cont("y", 0.0, 10.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 2.0)], ConstraintOp::Ge, 4.0);
        m.set_objective(vec![(x, 1.0), (y, 1.0)], 0.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.reduced.num_vars(), 2);
        assert_eq!(p.reduced.num_constraints(), 1);
        assert_eq!(p.dropped_rows, 0);
    }
}
