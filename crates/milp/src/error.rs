//! Error types for the LP/MILP solvers.

use std::fmt;

/// Errors produced while building or solving a model.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective can be improved without bound over the feasible region.
    Unbounded,
    /// The simplex iteration limit was reached before convergence.
    IterationLimit {
        /// Pivots performed before giving up.
        iterations: usize,
    },
    /// The branch-and-bound node limit was reached without proving
    /// optimality. Carries the best incumbent found, if any.
    NodeLimit {
        /// Nodes expanded before giving up.
        nodes: usize,
    },
    /// The model itself is malformed (e.g. a variable with `lb > ub`,
    /// or a constraint referencing a variable from another model).
    InvalidModel(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "model is infeasible"),
            SolveError::Unbounded => write!(f, "model is unbounded"),
            SolveError::IterationLimit { iterations } => {
                write!(
                    f,
                    "simplex iteration limit reached ({iterations} iterations)"
                )
            }
            SolveError::NodeLimit { nodes } => {
                write!(f, "branch-and-bound node limit reached ({nodes} nodes)")
            }
            SolveError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(SolveError::Infeasible.to_string(), "model is infeasible");
        assert_eq!(SolveError::Unbounded.to_string(), "model is unbounded");
        assert!(SolveError::IterationLimit { iterations: 7 }
            .to_string()
            .contains('7'));
        assert!(SolveError::NodeLimit { nodes: 42 }
            .to_string()
            .contains("42"));
        assert!(SolveError::InvalidModel("bad".into())
            .to_string()
            .contains("bad"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SolveError::Infeasible, SolveError::Infeasible);
        assert_ne!(SolveError::Infeasible, SolveError::Unbounded);
    }
}
