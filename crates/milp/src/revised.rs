//! Sparse revised simplex with bounded variables and a dual entry point.
//!
//! This is the warm-start engine behind branch-and-bound (see
//! [`crate::MipSolver`]). Three structural decisions drive it:
//!
//! * **Bounds leave the row space.** The model is solved as
//!   `min c·x  s.t.  A·x + s = b,  l ≤ (x,s) ≤ u`, where each row got a
//!   ranged slack (`≤` → `s ∈ [0,∞)`, `≥` → `s ∈ (−∞,0]`, `=` → `s ≡ 0`).
//!   Variable bounds are handled by the nonbasic-at-bound mechanism
//!   instead of explicit constraint rows, so the 441-row dense tableau of
//!   the 10×10 reference MILP collapses to a 231-row basis — and
//!   branch-and-bound *bound changes never touch the matrix*.
//! * **Dual simplex with a bound-flipping ratio test.** A parent node's
//!   optimal basis stays *dual feasible* in every child (reduced costs
//!   depend on the basis, not the bounds), so each child starts from the
//!   parent's basis and runs dual pivots only where the tightened bound
//!   broke primal feasibility — typically a handful of iterations instead
//!   of a full two-phase solve. The ratio test walks the dual
//!   breakpoints and *flips* boxed nonbasic variables to their opposite
//!   bound when that is cheaper than a pivot (counted in
//!   [`crate::SolveTrace::bound_flips`]).
//! * **Recompute, don't update.** The iteration recomputes the basic
//!   solution, duals and reduced costs from the factorization every
//!   pivot rather than maintaining them incrementally. At bill-capping
//!   sizes (m ≤ ~250) the FTRAN/BTRAN solves are microseconds, and fresh
//!   values make the method self-correcting: numerical drift can cost an
//!   extra pivot, never a wrong answer.
//!
//! Cold starts place each structural variable on a bound whose reduced
//! cost sign is dual-feasible and make every slack basic. Models where
//! no such placement exists (a free variable with nonzero cost, say) are
//! not *revised-startable*; callers fall back to the dense two-phase
//! solver in [`crate::simplex`], which remains the correctness oracle —
//! `BILLCAP_WARMSTART=0` additionally forces every node onto the cold
//! path for differential testing.

use crate::basis::BasisFactorization;
use crate::model::{ConstraintOp, Model, Sense};
use crate::sparse::CscMat;

/// Pivot and reduced-cost zero tolerance.
const ZTOL: f64 = 1e-9;

/// Refuse (or retire) a basis whose pivot magnitudes fall below this.
const PIVOT_TOL: f64 = 1e-8;

/// Reduced-cost sign tolerance when *verifying* an externally supplied
/// warm basis (see [`RevisedEngine::solve_warm_verified`]). Matches the
/// default primal `feas_tol` scale: the models are pre-scaled, so an
/// absolute tolerance is appropriate.
const DUAL_TOL: f64 = 1e-7;

/// Where a standard-form column currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColStatus {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound.
    Lower,
    /// Nonbasic at its upper bound.
    Upper,
}

/// A warm-start basis: the status of every standard-form column
/// (structural variables first, then one slack per row). This is the
/// *entire* solver state a branch-and-bound child inherits — the basis
/// itself is refactorized from scratch, so a stale factorization can
/// never leak across nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasisState {
    pub(crate) status: Vec<ColStatus>,
}

/// Tuning knobs for the revised simplex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RevisedOptions {
    /// Primal feasibility tolerance (absolute — the bill-capping models
    /// are pre-scaled, see `RATE_SCALE` in `billcap-core`).
    pub feas_tol: f64,
    /// Dual-pivot cap per node solve; hitting it falls back to the
    /// dense solver rather than erroring the whole MIP solve.
    pub max_iterations: usize,
    /// Refactorize once this many eta updates have accumulated.
    pub refactor_every: usize,
    /// Switch to Bland's rule after this many *consecutive* degenerate
    /// pivots — the anti-cycling guard (see DESIGN.md).
    pub bland_after_degenerate: usize,
}

impl Default for RevisedOptions {
    fn default() -> Self {
        Self {
            feas_tol: 1e-7,
            max_iterations: 10_000,
            refactor_every: 40,
            bland_after_degenerate: 16,
        }
    }
}

/// Work counters from one revised solve, merged into
/// [`crate::SolveTrace`] by branch-and-bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RevisedStats {
    /// Dual simplex pivots.
    pub iterations: usize,
    /// Pivots with a ~zero dual step.
    pub degenerate: usize,
    /// Nonbasic bound flips from the ratio test.
    pub bound_flips: usize,
    /// From-scratch basis factorizations.
    pub factorizations: usize,
    /// Mid-solve refactorizations (eta-file length or stability).
    pub refactorizations: usize,
}

/// An optimal revised solve.
#[derive(Debug, Clone)]
pub struct RevisedSolution {
    /// Structural variable values, indexed like the model's variables.
    pub values: Vec<f64>,
    /// Constraint duals in the model's sense (`d obj / d rhs`).
    pub duals: Vec<f64>,
    /// The optimal basis, for warm-starting children.
    pub basis: BasisState,
    /// Work counters.
    pub stats: RevisedStats,
}

/// Why a revised solve returned no solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevisedError {
    /// The node's constraint set admits no feasible point (a sound
    /// verdict: the dual simplex proved a row's violation irreparable).
    Infeasible {
        /// Work done before the verdict, still accounted for.
        stats: RevisedStats,
    },
    /// Pivot cap reached; the caller should re-solve densely.
    IterationLimit {
        /// Work wasted before giving up.
        stats: RevisedStats,
    },
    /// Singular or unstable basis; the caller should re-solve densely
    /// (or cold-start if this was a warm attempt).
    Numerical {
        /// Work wasted before giving up.
        stats: RevisedStats,
    },
}

impl RevisedError {
    /// The work counters accumulated before the error, so callers can
    /// account for wasted pivots in their traces.
    pub fn stats(&self) -> RevisedStats {
        match self {
            Self::Infeasible { stats }
            | Self::IterationLimit { stats }
            | Self::Numerical { stats } => *stats,
        }
    }
}

/// The standard-form problem plus mutable per-node bounds.
///
/// Built once per model; between node solves only
/// [`set_var_bounds`](Self::set_var_bounds) changes (branch-and-bound
/// tightens bounds, never the matrix), so the CSC matrix, costs and
/// right-hand side are shared across the whole search tree.
#[derive(Debug, Clone)]
pub struct RevisedEngine {
    /// Rows.
    m: usize,
    /// Structural columns (model variables).
    nvars: usize,
    /// Total columns (`nvars + m` slacks).
    ncols: usize,
    /// `m × ncols` constraint matrix, slacks included as unit columns.
    a: CscMat,
    /// Minimization-space cost per column (slacks cost 0).
    cost: Vec<f64>,
    /// Column lower bounds.
    lb: Vec<f64>,
    /// Column upper bounds.
    ub: Vec<f64>,
    /// Row right-hand sides.
    b: Vec<f64>,
    /// `+1` for a `Minimize` model, `−1` for `Maximize`.
    obj_sign: f64,
    /// Tuning knobs.
    opts: RevisedOptions,
}

impl RevisedEngine {
    /// Builds the standard form for `model` (assumed validated — the
    /// public solver entry points validate before reaching here).
    pub fn new(model: &Model, opts: RevisedOptions) -> Self {
        let m = model.num_constraints();
        let nvars = model.num_vars();
        let ncols = nvars + m;
        let mut columns: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
        let mut b = Vec::with_capacity(m);
        let mut lb = Vec::with_capacity(ncols);
        let mut ub = Vec::with_capacity(ncols);
        for v in model.variables() {
            lb.push(v.lb);
            ub.push(v.ub);
        }
        for (i, con) in model.constraints().iter().enumerate() {
            for &(v, coef) in &con.terms {
                columns[v.index()].push((i, coef));
            }
            columns[nvars + i].push((i, 1.0));
            b.push(con.rhs);
        }
        for con in model.constraints() {
            let (slb, sub) = match con.op {
                ConstraintOp::Le => (0.0, f64::INFINITY),
                ConstraintOp::Ge => (f64::NEG_INFINITY, 0.0),
                ConstraintOp::Eq => (0.0, 0.0),
            };
            lb.push(slb);
            ub.push(sub);
        }
        let obj_sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut cost = vec![0.0; ncols];
        for &(v, coef) in model.objective() {
            cost[v.index()] += obj_sign * coef;
        }
        Self {
            m,
            nvars,
            ncols,
            a: CscMat::from_columns(m, &columns),
            cost,
            lb,
            ub,
            b,
            obj_sign,
            opts,
        }
    }

    /// Installs per-node structural variable bounds (slack bounds are
    /// fixed by the row operators and never change).
    pub fn set_var_bounds(&mut self, bounds: &[(f64, f64)]) {
        debug_assert_eq!(bounds.len(), self.nvars);
        for (j, &(l, u)) in bounds.iter().enumerate() {
            self.lb[j] = l;
            self.ub[j] = u;
        }
    }

    /// Whether a dual-feasible cold-start placement exists under the
    /// current bounds. Checked once at the root: children only tighten
    /// bounds, which can never destroy startability.
    pub fn cold_startable(&self) -> bool {
        self.cold_status().is_some()
    }

    /// Dual-feasibilizing nonbasic placement: each structural column
    /// goes to a bound matching its reduced-cost sign (with an all-slack
    /// basis, `rc = c`), every slack becomes basic.
    fn cold_status(&self) -> Option<Vec<ColStatus>> {
        let mut status = Vec::with_capacity(self.ncols);
        for j in 0..self.nvars {
            let (l, u, c) = (self.lb[j], self.ub[j], self.cost[j]);
            let s = if c > ZTOL {
                l.is_finite().then_some(ColStatus::Lower)?
            } else if c < -ZTOL {
                u.is_finite().then_some(ColStatus::Upper)?
            } else if l.is_finite() {
                ColStatus::Lower
            } else if u.is_finite() {
                ColStatus::Upper
            } else {
                return None;
            };
            status.push(s);
        }
        status.extend(std::iter::repeat_n(ColStatus::Basic, self.m));
        Some(status)
    }

    /// Repairs a warm basis for the current bounds: a nonbasic column
    /// whose resting bound became infinite hops to the opposite finite
    /// bound. Under branch-and-bound this is a no-op (children only
    /// tighten), but it keeps arbitrary warm starts sound.
    fn repair(&self, mut status: Vec<ColStatus>) -> Option<Vec<ColStatus>> {
        for (j, s) in status.iter_mut().enumerate() {
            match *s {
                ColStatus::Basic => {}
                ColStatus::Lower if self.lb[j].is_finite() => {}
                ColStatus::Upper if self.ub[j].is_finite() => {}
                ColStatus::Lower => {
                    *s = self.ub[j].is_finite().then_some(ColStatus::Upper)?;
                }
                ColStatus::Upper => {
                    *s = self.lb[j].is_finite().then_some(ColStatus::Lower)?;
                }
            }
        }
        Some(status)
    }

    /// Resting value of a nonbasic column.
    fn nb_value(&self, j: usize, s: ColStatus) -> f64 {
        let v = match s {
            ColStatus::Lower => self.lb[j],
            ColStatus::Upper => self.ub[j],
            ColStatus::Basic => unreachable!("basic column has no resting value"),
        };
        debug_assert!(
            v.is_finite(),
            "nonbasic column {j} rests on an infinite bound"
        );
        v
    }

    /// Solves the current-bounds LP. `warm` supplies a starting basis
    /// (typically the parent node's optimum); `None` cold-starts.
    pub fn solve(&self, warm: Option<&BasisState>) -> Result<RevisedSolution, RevisedError> {
        let mut stats = RevisedStats::default();
        let numerical = |stats: RevisedStats| RevisedError::Numerical { stats };
        let status = match warm {
            Some(bs) if bs.status.len() == self.ncols => {
                self.repair(bs.status.clone()).ok_or(numerical(stats))?
            }
            Some(_) => return Err(numerical(stats)),
            None => self.cold_status().ok_or(numerical(stats))?,
        };
        self.optimize(status, &mut stats)
            .map(|(values, duals, basis)| RevisedSolution {
                values,
                duals,
                basis,
                stats,
            })
    }

    /// Like [`solve`](Self::solve) with `Some(warm)`, but *verifies* the
    /// basis is dual feasible under the current costs and matrix before
    /// entering the dual simplex. The main loop's exit test is primal
    /// feasibility alone — dual feasibility is an invariant the caller
    /// vouches for. That is sound inside branch-and-bound (children
    /// inherit a parent's optimal basis and only bounds change; reduced
    /// costs are bound-independent), but a basis carried *across models*
    /// — the incremental path reusing last hour's basis after matrix and
    /// objective edits — can be dual infeasible, and trusting it would
    /// silently return a suboptimal point as "optimal". Any violation
    /// reports [`RevisedError::Numerical`], which warm-start callers
    /// already treat as "fall back to a cold start".
    pub fn solve_warm_verified(&self, warm: &BasisState) -> Result<RevisedSolution, RevisedError> {
        let mut stats = RevisedStats::default();
        let numerical = |stats: RevisedStats| RevisedError::Numerical { stats };
        if warm.status.len() != self.ncols {
            return Err(numerical(stats));
        }
        let status = self.repair(warm.status.clone()).ok_or(numerical(stats))?;
        let basic: Vec<usize> = (0..self.ncols)
            .filter(|&j| status[j] == ColStatus::Basic)
            .collect();
        if basic.len() != self.m {
            return Err(numerical(stats));
        }
        let fact = self.factor(&basic, &mut stats).ok_or(numerical(stats))?;
        // Candidate duals: y = B⁻ᵀ·c_B.
        let mut y = vec![0.0; self.m];
        for (slot, &j) in basic.iter().enumerate() {
            y[slot] = self.cost[j];
        }
        fact.btran(&mut y);
        // Nonbasic reduced-cost signs in minimization space: a column at
        // its lower bound needs rc ≥ 0, at its upper bound rc ≤ 0. Fixed
        // columns (l == u) never enter, so their sign is irrelevant.
        for (j, &s) in status.iter().enumerate() {
            if s == ColStatus::Basic || self.lb[j] == self.ub[j] {
                continue;
            }
            let rc = self.cost[j] - self.a.col_dot(j, &y);
            let ok = match s {
                ColStatus::Lower => rc >= -DUAL_TOL,
                ColStatus::Upper => rc <= DUAL_TOL,
                ColStatus::Basic => unreachable!("basic filtered above"),
            };
            if !ok {
                return Err(numerical(stats));
            }
        }
        self.optimize(status, &mut stats)
            .map(|(values, duals, basis)| RevisedSolution {
                values,
                duals,
                basis,
                stats,
            })
    }

    /// The dual simplex loop. `status` must be dual feasible (cold
    /// placement or an inherited optimal basis).
    #[allow(clippy::type_complexity)]
    fn optimize(
        &self,
        mut status: Vec<ColStatus>,
        stats: &mut RevisedStats,
    ) -> Result<(Vec<f64>, Vec<f64>, BasisState), RevisedError> {
        let m = self.m;
        // Basis slots in ascending column order — deterministic no
        // matter what slot order the parent used internally.
        let mut basic: Vec<usize> = (0..self.ncols)
            .filter(|&j| status[j] == ColStatus::Basic)
            .collect();
        if basic.len() != m {
            return Err(RevisedError::Numerical { stats: *stats });
        }
        let mut slot_of = vec![usize::MAX; self.ncols];
        for (slot, &j) in basic.iter().enumerate() {
            slot_of[j] = slot;
        }
        let mut fact = self
            .factor(&basic, stats)
            .ok_or(RevisedError::Numerical { stats: *stats })?;
        let mut fresh = true; // no etas since the last factorization

        let mut xb = vec![0.0; m];
        let mut cb = vec![0.0; m];
        let mut rho = vec![0.0; m];
        let mut w = vec![0.0; m];
        let mut consecutive_degenerate = 0usize;
        let mut bland = false;

        loop {
            if fact.eta_count() >= self.opts.refactor_every {
                fact = self
                    .factor(&basic, stats)
                    .ok_or(RevisedError::Numerical { stats: *stats })?;
                stats.refactorizations += 1;
                fresh = true;
            }

            // Basic solution, recomputed fresh: x_B = B⁻¹(b − N·x_N).
            xb.copy_from_slice(&self.b);
            for (j, &s) in status.iter().enumerate() {
                if s != ColStatus::Basic {
                    self.a.scatter_col(j, -self.nb_value(j, s), &mut xb);
                }
            }
            fact.ftran(&mut xb);

            // Leaving choice: the basic column with the largest bound
            // violation (Bland mode: the smallest-index violated column).
            let mut leave: Option<(usize, f64, f64)> = None; // (slot, viol, delta)
            for (slot, &j) in basic.iter().enumerate() {
                let x = xb[slot];
                let (l, u) = (self.lb[j], self.ub[j]);
                // Absolute tolerance: the bill-capping models are scaled
                // (rates in 1e6 req/h units) so basic values stay within
                // a few orders of 1, and a bound-relative tolerance was
                // observed to let basic values sit ~3e-5 over a bound —
                // enough to corrupt demand equalities by whole requests
                // once clamped.
                let (viol, delta) = if x < l - self.opts.feas_tol {
                    (l - x, -1.0)
                } else if x > u + self.opts.feas_tol {
                    (x - u, 1.0)
                } else {
                    continue;
                };
                let better = match leave {
                    None => true,
                    // Slots scan in ascending basic-column order, so
                    // "first hit wins ties" is the deterministic
                    // smallest-column rule in both modes.
                    Some((_, best, _)) => !bland && viol > best,
                };
                if better {
                    leave = Some((slot, viol, delta));
                }
                if bland {
                    break;
                }
            }
            let Some((r_slot, violation, delta)) = leave else {
                // Primal feasible + dual feasible (invariant) = optimal.
                return Ok(self.extract(&status, &basic, &slot_of, &xb, &mut cb, &fact));
            };

            if stats.iterations >= self.opts.max_iterations {
                return Err(RevisedError::IterationLimit { stats: *stats });
            }

            // Duals and the leaving row of B⁻¹, both fresh.
            for (slot, &j) in basic.iter().enumerate() {
                cb[slot] = self.cost[j];
            }
            fact.btran(&mut cb); // now row-indexed y
            rho.iter_mut().for_each(|v| *v = 0.0);
            rho[r_slot] = 1.0;
            fact.btran(&mut rho); // row-indexed e_rᵀB⁻¹

            // Price the nonbasic columns: the entering candidate set.
            // `abar` is the leaving-row entry oriented so that moving an
            // eligible column off its bound *reduces* the violation.
            let mut eligible: Vec<(usize, f64, f64)> = Vec::new(); // (col, abar, ratio)
            for (j, &s) in status.iter().enumerate() {
                if s == ColStatus::Basic || self.lb[j] == self.ub[j] {
                    continue; // fixed columns never enter
                }
                let abar = delta * self.a.col_dot(j, &rho);
                let ok = match s {
                    ColStatus::Lower => abar > ZTOL,
                    ColStatus::Upper => abar < -ZTOL,
                    ColStatus::Basic => unreachable!(),
                };
                if !ok {
                    continue;
                }
                let rc = self.cost[j] - self.a.col_dot(j, &cb);
                let ratio = (rc / abar).max(0.0);
                eligible.push((j, abar, ratio));
            }

            // Ratio test.
            let mut flips: Vec<usize> = Vec::new();
            let entering = if bland {
                // Bland: smallest-index column among the minimal ratios,
                // no bound flips. Guarantees finiteness.
                let min_ratio = eligible
                    .iter()
                    .map(|&(_, _, r)| r)
                    .fold(f64::INFINITY, f64::min);
                eligible
                    .iter()
                    .find(|&&(_, _, r)| r <= min_ratio + ZTOL)
                    .map(|&(j, abar, ratio)| (j, abar, ratio))
            } else {
                // Bound-flipping ratio test: walk breakpoints in ratio
                // order; boxed columns whose full flip still leaves the
                // row violated flip in place of a pivot.
                eligible.sort_by(|a, b| {
                    (a.2, a.0)
                        .partial_cmp(&(b.2, b.0))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut v = violation;
                let mut chosen = None;
                for &(j, abar, ratio) in &eligible {
                    let range = self.ub[j] - self.lb[j];
                    if range.is_finite() && v - abar.abs() * range > self.opts.feas_tol {
                        flips.push(j);
                        v -= abar.abs() * range;
                    } else {
                        chosen = Some((j, abar, ratio));
                        break;
                    }
                }
                chosen
            };
            let Some((q, _abar_q, ratio_q)) = entering else {
                // No entering column can repair the violation even with
                // every boxed column flipped: the row is infeasible.
                return Err(RevisedError::Infeasible { stats: *stats });
            };

            // FTRAN the entering column and check the pivot.
            w.iter_mut().for_each(|v| *v = 0.0);
            self.a.scatter_col(q, 1.0, &mut w);
            fact.ftran(&mut w);
            if w[r_slot].abs() <= PIVOT_TOL {
                if fresh {
                    return Err(RevisedError::Numerical { stats: *stats });
                }
                // Stale etas may be lying; refactorize and retry the
                // whole iteration from exact values.
                fact = self
                    .factor(&basic, stats)
                    .ok_or(RevisedError::Numerical { stats: *stats })?;
                stats.refactorizations += 1;
                fresh = true;
                continue;
            }

            // Commit: flips, then the basis exchange.
            for &j in &flips {
                status[j] = match status[j] {
                    ColStatus::Lower => ColStatus::Upper,
                    ColStatus::Upper => ColStatus::Lower,
                    ColStatus::Basic => unreachable!(),
                };
            }
            stats.bound_flips += flips.len();
            let leaving_col = basic[r_slot];
            status[leaving_col] = if delta > 0.0 {
                ColStatus::Upper // left through its upper bound
            } else {
                ColStatus::Lower
            };
            status[q] = ColStatus::Basic;
            slot_of[leaving_col] = usize::MAX;
            slot_of[q] = r_slot;
            basic[r_slot] = q;
            if fact.push_eta(r_slot, &w) {
                fresh = false;
            } else {
                fact = self
                    .factor(&basic, stats)
                    .ok_or(RevisedError::Numerical { stats: *stats })?;
                stats.refactorizations += 1;
                fresh = true;
            }

            stats.iterations += 1;
            if ratio_q <= ZTOL {
                stats.degenerate += 1;
                consecutive_degenerate += 1;
                if consecutive_degenerate >= self.opts.bland_after_degenerate {
                    bland = true; // sticky: stay safe for the rest of the solve
                }
            } else {
                consecutive_degenerate = 0;
            }
        }
    }

    /// Factorizes the given basis columns.
    fn factor(&self, basic: &[usize], stats: &mut RevisedStats) -> Option<BasisFactorization> {
        stats.factorizations += 1;
        let cols: Vec<Vec<(usize, f64)>> = basic
            .iter()
            .map(|&j| {
                let (rows, vals) = self.a.col(j);
                rows.iter().copied().zip(vals.iter().copied()).collect()
            })
            .collect();
        BasisFactorization::factor(self.m, &cols)
    }

    /// Assembles the optimal solution: clamped structural values, duals
    /// in the model's sense, and the basis for warm-starting children.
    fn extract(
        &self,
        status: &[ColStatus],
        basic: &[usize],
        slot_of: &[usize],
        xb: &[f64],
        cb: &mut [f64],
        fact: &BasisFactorization,
    ) -> (Vec<f64>, Vec<f64>, BasisState) {
        let mut values = Vec::with_capacity(self.nvars);
        for j in 0..self.nvars {
            let x = match status[j] {
                ColStatus::Basic => xb[slot_of[j]],
                s => self.nb_value(j, s),
            };
            // Basic values sit within feas_tol of their bounds; clamping
            // keeps integer rounding and child bound ranges honest.
            values.push(x.min(self.ub[j]).max(self.lb[j]));
        }
        for (slot, &j) in basic.iter().enumerate() {
            cb[slot] = self.cost[j];
        }
        fact.btran(cb);
        let duals = cb.iter().map(|&y| self.obj_sign * y + 0.0).collect();
        (
            values,
            duals,
            BasisState {
                status: status.to_vec(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};

    fn solve_cold(model: &Model) -> RevisedSolution {
        let engine = RevisedEngine::new(model, RevisedOptions::default());
        assert!(engine.cold_startable());
        engine.solve(None).expect("solvable")
    }

    /// `x, y ∈ [0, 10]`, `x + y ≤ 4`, objective coefficients `(cx, cy)`.
    fn box_model(cx: f64, cy: f64) -> Model {
        let mut m = Model::new("box", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        let y = m.add_cont("y", 0.0, 10.0);
        m.add_constraint("cap", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        m.set_objective(vec![(x, cx), (y, cy)], 0.0);
        m
    }

    #[test]
    fn warm_verified_accepts_an_optimal_basis() {
        let m = box_model(1.0, 1.0);
        let engine = RevisedEngine::new(&m, RevisedOptions::default());
        let cold = engine.solve(None).expect("solvable");
        let warm = engine
            .solve_warm_verified(&cold.basis)
            .expect("own optimal basis verifies");
        assert_eq!(warm.values, cold.values);
        assert_eq!(warm.stats.iterations, 0);
    }

    #[test]
    fn warm_verified_rejects_dual_infeasible_basis() {
        // min x + y puts both structurals at their lower bound. Under the
        // flipped objective min −x − y that basis is primal feasible but
        // dual infeasible: the unverified dual simplex would exit
        // immediately and report the (suboptimal) origin as optimal. The
        // verified entry point must refuse instead.
        let cheap = RevisedEngine::new(&box_model(1.0, 1.0), RevisedOptions::default());
        let basis = cheap.solve(None).expect("solvable").basis;
        let flipped = RevisedEngine::new(&box_model(-1.0, -1.0), RevisedOptions::default());
        assert!(matches!(
            flipped.solve_warm_verified(&basis),
            Err(RevisedError::Numerical { .. })
        ));
        // And the cold solve of the flipped model finds the true optimum.
        let sol = flipped.solve(None).expect("solvable");
        let obj: f64 = sol.values[0] + sol.values[1];
        assert!((obj - 4.0).abs() < 1e-6, "sum {obj}");
    }

    #[test]
    fn warm_verified_accepts_still_dual_feasible_basis_across_rhs_change() {
        // RHS changes never affect reduced costs, so last-solve bases stay
        // dual feasible — the incremental path's common case.
        let m1 = box_model(1.0, -1.0);
        let e1 = RevisedEngine::new(&m1, RevisedOptions::default());
        let basis = e1.solve(None).expect("solvable").basis;
        let mut m2 = box_model(1.0, -1.0);
        m2.set_constraint_rhs(0, 2.0).expect("row exists");
        let e2 = RevisedEngine::new(&m2, RevisedOptions::default());
        let warm = e2.solve_warm_verified(&basis).expect("dual feasible");
        let cold = e2.solve(None).expect("solvable");
        assert_eq!(warm.values, cold.values);
    }

    #[test]
    fn bounded_lp_matches_known_optimum() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, 0 <= x,y <= 3.
        let mut m = Model::new("lp", Sense::Maximize);
        let x = m.add_cont("x", 0.0, 3.0);
        let y = m.add_cont("y", 0.0, 3.0);
        m.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint("c2", vec![(x, 1.0), (y, 3.0)], ConstraintOp::Le, 6.0);
        m.set_objective(vec![(x, 3.0), (y, 2.0)], 0.0);
        let sol = solve_cold(&m);
        let obj = m.eval_objective(&sol.values);
        assert!((obj - 11.0).abs() < 1e-6, "objective {obj}");
        assert!((sol.values[0] - 3.0).abs() < 1e-6);
        assert!((sol.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_rows() {
        // min x + 2y s.t. x + y = 5, x - y >= 1, 0 <= x,y <= 10.
        let mut m = Model::new("eq", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        let y = m.add_cont("y", 0.0, 10.0);
        m.add_constraint("sum", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 5.0);
        m.add_constraint("gap", vec![(x, 1.0), (y, -1.0)], ConstraintOp::Ge, 1.0);
        m.set_objective(vec![(x, 1.0), (y, 2.0)], 0.0);
        let sol = solve_cold(&m);
        // Optimum pushes y down to the Ge row: x=3, y=2? No: min x+2y
        // wants y small: x - y >= 1 and x + y = 5 give y <= 2, so y=2
        // is the wrong direction — y can go to 0 with x=5.
        let obj = m.eval_objective(&sol.values);
        assert!((obj - 5.0).abs() < 1e-6, "objective {obj}");
        assert!((sol.values[0] - 5.0).abs() < 1e-6);
        assert!(sol.values[1].abs() < 1e-6);
    }

    #[test]
    fn infeasible_is_detected() {
        let mut m = Model::new("inf", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 1.0);
        m.add_constraint("hi", vec![(x, 1.0)], ConstraintOp::Ge, 2.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let engine = RevisedEngine::new(&m, RevisedOptions::default());
        assert!(matches!(
            engine.solve(None),
            Err(RevisedError::Infeasible { .. })
        ));
    }

    #[test]
    fn free_variable_is_not_cold_startable() {
        let mut m = Model::new("free", Sense::Minimize);
        let x = m.add_cont("x", f64::NEG_INFINITY, f64::INFINITY);
        m.add_constraint("row", vec![(x, 1.0)], ConstraintOp::Ge, 1.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let engine = RevisedEngine::new(&m, RevisedOptions::default());
        assert!(!engine.cold_startable());
    }

    #[test]
    fn no_constraints_reads_bounds() {
        let mut m = Model::new("box", Sense::Minimize);
        m.add_cont("x", 2.0, 8.0);
        let x = m.variables()[0].lb;
        assert_eq!(x, 2.0);
        let v = m.add_cont("y", -3.0, 5.0);
        m.set_objective(vec![(v, -1.0)], 0.0);
        let sol = solve_cold(&m);
        assert_eq!(sol.values, vec![2.0, 5.0]); // x has cost 0, rests at lb
        assert!(sol.duals.is_empty());
    }

    #[test]
    fn warm_start_from_optimal_basis_is_instant() {
        let mut m = Model::new("warm", Sense::Maximize);
        let x = m.add_cont("x", 0.0, 3.0);
        let y = m.add_cont("y", 0.0, 3.0);
        m.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        m.set_objective(vec![(x, 3.0), (y, 2.0)], 0.0);
        let engine = RevisedEngine::new(&m, RevisedOptions::default());
        let first = engine.solve(None).expect("solvable");
        let again = engine.solve(Some(&first.basis)).expect("solvable");
        assert_eq!(again.stats.iterations, 0, "re-solving an optimum is free");
        assert_eq!(again.values, first.values);
    }

    #[test]
    fn warm_start_after_bound_tightening_repairs_quickly() {
        // The branch-and-bound usage pattern: tighten one bound, restart
        // from the parent basis.
        let mut m = Model::new("child", Sense::Maximize);
        let x = m.add_cont("x", 0.0, 3.0);
        let y = m.add_cont("y", 0.0, 3.0);
        m.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint("c2", vec![(x, 2.0), (y, 1.0)], ConstraintOp::Le, 6.0);
        m.set_objective(vec![(x, 3.0), (y, 2.0)], 0.0);
        let mut engine = RevisedEngine::new(&m, RevisedOptions::default());
        let parent = engine.solve(None).expect("solvable");
        engine.set_var_bounds(&[(0.0, 1.0), (0.0, 3.0)]); // branch: x <= 1
        let warm = engine.solve(Some(&parent.basis)).expect("solvable");
        let cold = engine.solve(None).expect("solvable");
        let wobj = m.eval_objective(&warm.values);
        let cobj = m.eval_objective(&cold.values);
        assert!((wobj - cobj).abs() < 1e-6, "warm {wobj} vs cold {cobj}");
        assert!(
            warm.stats.iterations <= 2,
            "one tightened bound should repair in a pivot or two, took {}",
            warm.stats.iterations
        );
    }

    #[test]
    fn duals_match_shadow_price_direction() {
        // min 2x s.t. x >= 3 → dual of the Ge row is 2 (cost rises with rhs).
        let mut m = Model::new("dual", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        m.add_constraint("lo", vec![(x, 1.0)], ConstraintOp::Ge, 3.0);
        m.set_objective(vec![(x, 2.0)], 0.0);
        let sol = solve_cold(&m);
        assert!((sol.values[0] - 3.0).abs() < 1e-9);
        assert!((sol.duals[0] - 2.0).abs() < 1e-9, "dual {}", sol.duals[0]);
    }

    #[test]
    fn bound_flips_are_counted_on_a_boxed_instance() {
        // A row violated so badly that flipping one boxed column is
        // cheaper than pivoting it in: x + y + z >= 5 with boxes [0,2].
        let mut m = Model::new("flip", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 2.0);
        let y = m.add_cont("y", 0.0, 2.0);
        let z = m.add_cont("z", 0.0, 2.0);
        m.add_constraint(
            "cover",
            vec![(x, 1.0), (y, 1.0), (z, 1.0)],
            ConstraintOp::Ge,
            5.0,
        );
        // Costs break the tie: cheap columns flip first.
        m.set_objective(vec![(x, 1.0), (y, 2.0), (z, 3.0)], 0.0);
        let sol = solve_cold(&m);
        let obj = m.eval_objective(&sol.values);
        // Optimum: x=2, y=2, z=1 → 1·2 + 2·2 + 3·1 = 9.
        assert!((obj - 9.0).abs() < 1e-6, "objective {obj}");
        assert!(
            sol.stats.bound_flips >= 1,
            "expected the ratio test to flip at least one boxed column"
        );
    }
}
