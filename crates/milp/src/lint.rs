//! Static model analyzer: pre-solve diagnostics with stable codes.
//!
//! [`lint_model`] inspects a [`Model`] *without solving it* and returns a
//! [`LintReport`] of stable-coded findings (`M0xx`), each carrying a
//! severity, a `model:row`/`model:var` location, and a one-line
//! actionable message. The checks target the failure modes of the
//! bill-capping MILPs — loose big-M segment rows, broken exactly-one
//! level selection, contradictory duplicated rows — plus the generic
//! model smells (dangling variables, extreme coefficient ranges) that
//! precede silent wrong answers.
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | M001 | Warning | row coefficient range exceeds 1e8 (ill-conditioned) |
//! | M002 | Warning | big-M row is looser than the bounded variable needs |
//! | M003 | Error   | exactly-one row over non-binary participants |
//! | M004 | Error/Warning | contradictory (Error) or redundant (Warning) parallel rows |
//! | M005 | Warning | variable appears in no constraint and no objective |
//! | M006 | Info    | continuous variable is implied integral |
//! | M007 | Error   | bounds are statically infeasible (propagation proof) |
//! | M008 | Error   | objective is statically unbounded |
//! | M009 | Info    | bound propagation tightened N bounds |
//! | M010 | Info    | model dimensions and conditioning summary |
//!
//! Severities gate behavior: `Error` findings mean the model is broken
//! and solving it wastes work or returns garbage; `Warning` findings
//! deserve a look; `Info` findings are structural facts. The optimizers
//! honor `BILLCAP_LINT=deny` by refusing to solve models with `Error`
//! findings (see `billcap-core`).

use crate::model::{ConstraintOp, Model, VarType};
use crate::presolve::propagate_bounds;
use crate::SolveError;
use billcap_obs::json::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Row coefficient dynamic range (`max|a| / min|a|`) above which M001
/// fires: beyond ~1e8 a double's 15–16 significant digits leave under
/// half the mantissa for the smaller coefficient during pivoting.
pub const ROW_RANGE_WARN: f64 = 1e8;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Structural fact, no action needed.
    Info,
    /// Suspicious; worth a look but the model is solvable.
    Warning,
    /// The model is broken: solving it wastes work or returns garbage.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One diagnostic produced by a linter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable code (`M0xx` for model lints, `S0xx` for spec lints).
    pub code: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// Where: `model:row`/`model:var` for model lints, a spec field path
    /// (`sites[0].power_cap_mw`) for spec lints.
    pub location: String,
    /// One-line actionable message.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [{}] {}",
            self.location, self.severity, self.code, self.message
        )
    }
}

impl Finding {
    /// The finding as a JSON object (one line of the JSONL export).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("code".into(), Value::Str(self.code.into())),
            ("severity".into(), Value::Str(self.severity.to_string())),
            ("location".into(), Value::Str(self.location.clone())),
            ("message".into(), Value::Str(self.message.clone())),
        ])
    }
}

/// Dimensions and conditioning statistics of a linted model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelStats {
    /// Variables.
    pub vars: usize,
    /// Integer and binary variables.
    pub int_vars: usize,
    /// Constraints.
    pub rows: usize,
    /// Nonzero constraint coefficients.
    pub nonzeros: usize,
    /// Smallest nonzero |coefficient| across all rows (0 when empty).
    pub min_abs_coeff: f64,
    /// Largest |coefficient| across all rows (0 when empty).
    pub max_abs_coeff: f64,
}

impl ModelStats {
    /// `max|a| / min|a|` over the whole matrix (1 when empty): a cheap
    /// proxy for how much precision the simplex can lose to scaling.
    pub fn dynamic_range(&self) -> f64 {
        if self.min_abs_coeff > 0.0 {
            self.max_abs_coeff / self.min_abs_coeff
        } else {
            1.0
        }
    }
}

/// Result of linting one model: findings plus summary statistics.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// All findings, in check order (M001 … M010).
    pub findings: Vec<Finding>,
    /// Model dimensions and conditioning.
    pub stats: ModelStats,
}

impl LintReport {
    /// Findings at [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
    }

    /// Whether the report carries no `Error`-severity finding.
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// The most severe finding level, or `None` for an empty report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Whether any finding carries `code`.
    pub fn has(&self, code: &str) -> bool {
        self.findings.iter().any(|f| f.code == code)
    }

    /// The findings as JSONL (one object per line), matching the
    /// billcap-obs export conventions.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_json().render());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        Ok(())
    }
}

/// Lints `model` without solving it. Never fails: a model too malformed
/// to analyze (e.g. out-of-range variable references) is itself reported
/// as an `Error` finding.
pub fn lint_model(model: &Model) -> LintReport {
    let mut findings = Vec::new();
    let stats = compute_stats(model);

    if let Err(e) = model.validate() {
        findings.push(Finding {
            code: "M007",
            severity: Severity::Error,
            location: model.name.clone(),
            message: format!("model fails structural validation: {e}"),
        });
        return LintReport { findings, stats };
    }

    check_row_ranges(model, &mut findings);
    check_big_m(model, &mut findings);
    check_exactly_one(model, &mut findings);
    check_parallel_rows(model, &mut findings);
    check_dangling(model, &mut findings);
    check_implied_integrality(model, &mut findings);
    check_propagation(model, &mut findings);
    findings.push(Finding {
        code: "M010",
        severity: Severity::Info,
        location: model.name.clone(),
        message: format!(
            "{} vars ({} integer), {} rows, {} nonzeros, coefficient range {:.1e}",
            stats.vars,
            stats.int_vars,
            stats.rows,
            stats.nonzeros,
            stats.dynamic_range()
        ),
    });

    LintReport { findings, stats }
}

fn compute_stats(model: &Model) -> ModelStats {
    let mut min_abs = f64::INFINITY;
    let mut max_abs: f64 = 0.0;
    let mut nonzeros = 0usize;
    for c in model.constraints() {
        for &(_, a) in &c.terms {
            if a != 0.0 && a.is_finite() {
                nonzeros += 1;
                min_abs = min_abs.min(a.abs());
                max_abs = max_abs.max(a.abs());
            }
        }
    }
    ModelStats {
        vars: model.num_vars(),
        int_vars: model.integer_vars().len(),
        rows: model.num_constraints(),
        nonzeros,
        min_abs_coeff: if nonzeros > 0 { min_abs } else { 0.0 },
        max_abs_coeff: max_abs,
    }
}

/// M001: per-row coefficient dynamic range.
fn check_row_ranges(model: &Model, findings: &mut Vec<Finding>) {
    for c in model.constraints() {
        let (mut min_abs, mut max_abs) = (f64::INFINITY, 0.0f64);
        for &(_, a) in &c.terms {
            if a != 0.0 {
                min_abs = min_abs.min(a.abs());
                max_abs = max_abs.max(a.abs());
            }
        }
        if max_abs > 0.0 && max_abs / min_abs > ROW_RANGE_WARN {
            findings.push(Finding {
                code: "M001",
                severity: Severity::Warning,
                location: format!("{}:{}", model.name, c.name),
                message: format!(
                    "coefficient range {:.1e} (|a| in [{min_abs:.3e}, {max_abs:.3e}]) \
                     risks precision loss; rescale the row's units",
                    max_abs / min_abs
                ),
            });
        }
    }
}

/// M002: two-term big-M rows `x − M·z ≤ 0` (binary `z`) where `M`
/// exceeds what `x`'s own upper bound already enforces.
fn check_big_m(model: &Model, findings: &mut Vec<Finding>) {
    let vars = model.variables();
    for c in model.constraints() {
        if c.op != ConstraintOp::Le || c.rhs.abs() > 1e-9 || c.terms.len() != 2 {
            continue;
        }
        // Identify the (positive continuous, negative binary) pair.
        let (pos, neg) = match (c.terms[0], c.terms[1]) {
            ((x, a), (z, b)) if a > 0.0 && b < 0.0 => ((x, a), (z, b)),
            ((z, b), (x, a)) if a > 0.0 && b < 0.0 => ((x, a), (z, b)),
            _ => continue,
        };
        let (xv, a) = pos;
        let (zv, b) = neg;
        if vars[zv.index()].var_type != VarType::Binary {
            continue;
        }
        let big_m = -b / a; // row is a·x ≤ (−b)·z, i.e. x ≤ M·z
        let x_ub = vars[xv.index()].ub;
        if x_ub.is_finite() && big_m > x_ub * (1.0 + 1e-9) && x_ub > 0.0 {
            findings.push(Finding {
                code: "M002",
                severity: Severity::Warning,
                location: format!("{}:{}", model.name, c.name),
                message: format!(
                    "big-M {big_m:.6} is looser than ub({}) = {x_ub:.6}; \
                     tighten M to the variable bound for a stronger relaxation",
                    vars[xv.index()].name
                ),
            });
        }
    }
}

/// M003: rows `Σ z_j = 1` with unit coefficients whose participants are
/// not all binary — the exactly-one level selection silently breaks.
fn check_exactly_one(model: &Model, findings: &mut Vec<Finding>) {
    let vars = model.variables();
    for c in model.constraints() {
        if c.op != ConstraintOp::Eq || (c.rhs - 1.0).abs() > 1e-9 || c.terms.len() < 2 {
            continue;
        }
        if !c.terms.iter().all(|&(_, a)| (a - 1.0).abs() < 1e-9) {
            continue;
        }
        for &(v, _) in &c.terms {
            let var = &vars[v.index()];
            let binary_like = matches!(var.var_type, VarType::Binary)
                || (matches!(var.var_type, VarType::Integer) && var.lb >= 0.0 && var.ub <= 1.0);
            if !binary_like {
                findings.push(Finding {
                    code: "M003",
                    severity: Severity::Error,
                    location: format!("{}:{}", model.name, c.name),
                    message: format!(
                        "exactly-one row includes non-binary '{}' \
                         ({:?} in [{}, {}]); selection semantics are broken",
                        var.name, var.var_type, var.lb, var.ub
                    ),
                });
            }
        }
    }
}

/// M004: rows with identical normalized coefficient vectors. Redundant
/// pairs waste pivots; contradictory pairs make the model infeasible in
/// a way that surfaces as a deep simplex failure instead of a message.
fn check_parallel_rows(model: &Model, findings: &mut Vec<Finding>) {
    // Normalize each row: terms sorted by variable, scaled so the first
    // coefficient is +1. The scale flips Le/Ge when negative.
    type Key = Vec<(usize, u64)>;
    let mut groups: BTreeMap<Key, Vec<(usize, ConstraintOp, f64)>> = BTreeMap::new();
    for (ci, c) in model.constraints().iter().enumerate() {
        let mut terms: Vec<(usize, f64)> = c
            .terms
            .iter()
            .filter(|&&(_, a)| a != 0.0)
            .map(|&(v, a)| (v.index(), a))
            .collect();
        if terms.is_empty() {
            continue;
        }
        terms.sort_by_key(|&(v, _)| v);
        let scale = terms[0].1;
        let op = if scale > 0.0 {
            c.op
        } else {
            match c.op {
                ConstraintOp::Le => ConstraintOp::Ge,
                ConstraintOp::Ge => ConstraintOp::Le,
                ConstraintOp::Eq => ConstraintOp::Eq,
            }
        };
        let key: Key = terms
            .iter()
            .map(|&(v, a)| (v, (a / scale).to_bits()))
            .collect();
        groups.entry(key).or_default().push((ci, op, c.rhs / scale));
    }
    for rows in groups.values() {
        if rows.len() < 2 {
            continue;
        }
        // Intersect the intervals each row imposes on the shared
        // expression; an empty intersection is a static contradiction.
        for w in rows.windows(2) {
            let (i, op_a, rhs_a) = w[0];
            let (j, op_b, rhs_b) = w[1];
            let interval = |op: ConstraintOp, r: f64| match op {
                ConstraintOp::Le => (f64::NEG_INFINITY, r),
                ConstraintOp::Ge => (r, f64::INFINITY),
                ConstraintOp::Eq => (r, r),
            };
            let (lo_a, hi_a) = interval(op_a, rhs_a);
            let (lo_b, hi_b) = interval(op_b, rhs_b);
            let tol = 1e-9 * rhs_a.abs().max(rhs_b.abs()).max(1.0);
            let name_i = &model.constraints()[i].name;
            let name_j = &model.constraints()[j].name;
            if lo_a.max(lo_b) > hi_a.min(hi_b) + tol {
                findings.push(Finding {
                    code: "M004",
                    severity: Severity::Error,
                    location: format!("{}:{}", model.name, name_j),
                    message: format!(
                        "contradicts parallel row '{name_i}' \
                         (same coefficients, incompatible right-hand sides); \
                         the model is infeasible"
                    ),
                });
            } else {
                findings.push(Finding {
                    code: "M004",
                    severity: Severity::Warning,
                    location: format!("{}:{}", model.name, name_j),
                    message: format!(
                        "duplicates row '{name_i}' (parallel coefficients); \
                         drop one of the two"
                    ),
                });
            }
        }
    }
}

/// M005: variables referenced by no constraint and no objective term.
fn check_dangling(model: &Model, findings: &mut Vec<Finding>) {
    let mut used = vec![false; model.num_vars()];
    for c in model.constraints() {
        for &(v, a) in &c.terms {
            if a != 0.0 {
                used[v.index()] = true;
            }
        }
    }
    for &(v, a) in model.objective() {
        if a != 0.0 {
            used[v.index()] = true;
        }
    }
    for (i, var) in model.variables().iter().enumerate() {
        if !used[i] {
            findings.push(Finding {
                code: "M005",
                severity: Severity::Warning,
                location: format!("{}:{}", model.name, var.name),
                message: "variable appears in no constraint or objective; \
                          remove it or wire it in"
                    .into(),
            });
        }
    }
}

/// M006: continuous variables that take integer values at every vertex
/// — all their rows are equalities with integer data over otherwise
/// integer variables — could be declared integer for free.
fn check_implied_integrality(model: &Model, findings: &mut Vec<Finding>) {
    let vars = model.variables();
    let is_intlike = |i: usize| matches!(vars[i].var_type, VarType::Integer | VarType::Binary);
    'outer: for (i, var) in vars.iter().enumerate() {
        if is_intlike(i) {
            continue;
        }
        let mut appears = false;
        for c in model.constraints() {
            let mine: Vec<&(crate::model::VarId, f64)> = c
                .terms
                .iter()
                .filter(|&&(v, a)| v.index() == i && a != 0.0)
                .collect();
            if mine.is_empty() {
                continue;
            }
            appears = true;
            // Needs: equality row, own coefficient ±1, all data integral,
            // every other participant integer-typed.
            let own_unit = mine.iter().all(|&&(_, a)| (a.abs() - 1.0).abs() < 1e-12);
            let integral_data = c.rhs.fract().abs() < 1e-12
                && c.terms.iter().all(|&(_, a)| a.fract().abs() < 1e-12);
            let others_integer = c
                .terms
                .iter()
                .filter(|&&(v, a)| v.index() != i && a != 0.0)
                .all(|&(v, _)| is_intlike(v.index()));
            if c.op != ConstraintOp::Eq || !own_unit || !integral_data || !others_integer {
                continue 'outer;
            }
        }
        if appears {
            findings.push(Finding {
                code: "M006",
                severity: Severity::Info,
                location: format!("{}:{}", model.name, var.name),
                message: "continuous variable is integral at every vertex \
                          (unit coefficients in all-integer equality rows); \
                          declaring it integer costs nothing"
                    .into(),
            });
        }
    }
}

/// M007/M008/M009: activity-based bound propagation. A propagation-time
/// infeasibility is a static proof the solver would otherwise discover
/// through simplex failures; a still-infinite improving-direction bound
/// on an unconstrained objective variable proves unboundedness.
fn check_propagation(model: &Model, findings: &mut Vec<Finding>) {
    let prop = match propagate_bounds(model) {
        Ok(p) => p,
        Err(SolveError::Infeasible) => {
            findings.push(Finding {
                code: "M007",
                severity: Severity::Error,
                location: model.name.clone(),
                message: "bounds are statically infeasible: propagating row \
                          activities empties a variable's domain before any \
                          simplex work"
                    .into(),
            });
            return;
        }
        Err(e) => {
            findings.push(Finding {
                code: "M007",
                severity: Severity::Error,
                location: model.name.clone(),
                message: format!("bound propagation failed: {e}"),
            });
            return;
        }
    };
    if prop.tightened > 0 {
        findings.push(Finding {
            code: "M009",
            severity: Severity::Info,
            location: model.name.clone(),
            message: format!(
                "bound propagation tightened {} bound(s) in {} round(s); \
                 the branch-and-bound root starts from the tighter box",
                prop.tightened, prop.rounds
            ),
        });
    }

    // M008: a variable that no constraint touches, pushed toward an
    // infinite bound by the objective, makes the model unbounded (when
    // feasible at all — M007 covers the infeasible case).
    let mut constrained = vec![false; model.num_vars()];
    for c in model.constraints() {
        for &(v, a) in &c.terms {
            if a != 0.0 {
                constrained[v.index()] = true;
            }
        }
    }
    for &(v, coeff) in model.objective() {
        if coeff == 0.0 || constrained[v.index()] {
            continue;
        }
        let (lb, ub) = prop.bounds[v.index()];
        let improving_to_inf = match model.sense {
            crate::model::Sense::Maximize => {
                (coeff > 0.0 && ub == f64::INFINITY) || (coeff < 0.0 && lb == f64::NEG_INFINITY)
            }
            crate::model::Sense::Minimize => {
                (coeff > 0.0 && lb == f64::NEG_INFINITY) || (coeff < 0.0 && ub == f64::INFINITY)
            }
        };
        if improving_to_inf {
            findings.push(Finding {
                code: "M008",
                severity: Severity::Error,
                location: format!("{}:{}", model.name, model.variables()[v.index()].name),
                message: "objective is statically unbounded: the variable is \
                          unconstrained and its improving direction has no \
                          finite bound"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    fn codes(r: &LintReport) -> Vec<&'static str> {
        r.findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn clean_model_has_no_errors() {
        let mut m = Model::new("clean", Sense::Maximize);
        let x = m.add_cont("x", 0.0, 10.0);
        let z = m.add_binary("z");
        m.add_constraint("c", vec![(x, 1.0), (z, 2.0)], ConstraintOp::Le, 8.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let r = lint_model(&m);
        assert!(r.is_clean(), "{r}");
        assert!(r.has("M010"));
    }

    #[test]
    fn flags_extreme_row_range() {
        let mut m = Model::new("range", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 1.0);
        let y = m.add_cont("y", 0.0, 1.0);
        m.add_constraint("bad", vec![(x, 1e9), (y, 1.0)], ConstraintOp::Le, 1.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let r = lint_model(&m);
        assert!(r.has("M001"), "{r}");
        assert!(r.is_clean()); // warning, not error
    }

    #[test]
    fn flags_loose_big_m() {
        let mut m = Model::new("bigm", Sense::Minimize);
        let q = m.add_cont("q", 0.0, 100.0);
        let z = m.add_binary("z");
        // M = 5000 dwarfs ub(q) = 100.
        m.add_constraint(
            "lvl_hi",
            vec![(q, 1.0), (z, -5000.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.set_objective(vec![(q, 1.0)], 0.0);
        let r = lint_model(&m);
        assert!(r.has("M002"), "{r}");
    }

    #[test]
    fn flags_broken_exactly_one() {
        let mut m = Model::new("sos", Sense::Minimize);
        let z0 = m.add_binary("z0");
        let z1 = m.add_cont("z1", 0.0, 5.0); // not binary!
        m.add_constraint("one", vec![(z0, 1.0), (z1, 1.0)], ConstraintOp::Eq, 1.0);
        m.set_objective(vec![(z0, 1.0)], 0.0);
        let r = lint_model(&m);
        assert!(r.has("M003"), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn flags_duplicate_and_contradictory_rows() {
        let mut m = Model::new("dup", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        let y = m.add_cont("y", 0.0, 10.0);
        m.add_constraint("a", vec![(x, 1.0), (y, 2.0)], ConstraintOp::Le, 8.0);
        m.add_constraint("b", vec![(x, 2.0), (y, 4.0)], ConstraintOp::Le, 16.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let r = lint_model(&m);
        let dup: Vec<_> = r.findings.iter().filter(|f| f.code == "M004").collect();
        assert_eq!(dup.len(), 1, "{r}");
        assert_eq!(dup[0].severity, Severity::Warning);

        // Contradictory: same expression forced to two different values.
        let mut m = Model::new("contra", Sense::Minimize);
        let x = m.add_cont("x", f64::NEG_INFINITY, f64::INFINITY);
        let y = m.add_cont("y", f64::NEG_INFINITY, f64::INFINITY);
        m.add_constraint("a", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 3.0);
        m.add_constraint("b", vec![(x, -1.0), (y, -1.0)], ConstraintOp::Eq, -7.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let r = lint_model(&m);
        assert!(
            r.findings
                .iter()
                .any(|f| f.code == "M004" && f.severity == Severity::Error),
            "{r}"
        );
    }

    #[test]
    fn flags_dangling_variable() {
        let mut m = Model::new("dangle", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        let _unused = m.add_cont("ghost", 0.0, 1.0);
        m.add_constraint("c", vec![(x, 1.0)], ConstraintOp::Ge, 1.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let r = lint_model(&m);
        let f = r.findings.iter().find(|f| f.code == "M005").expect("M005");
        assert!(f.location.ends_with("ghost"), "{}", f.location);
    }

    #[test]
    fn flags_implied_integrality() {
        let mut m = Model::new("impl", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        let k = m.add_var("k", VarType::Integer, 0.0, 10.0);
        m.add_constraint("eq", vec![(x, 1.0), (k, -2.0)], ConstraintOp::Eq, 3.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let r = lint_model(&m);
        assert!(r.has("M006"), "{r}");
    }

    #[test]
    fn flags_static_infeasibility() {
        let mut m = Model::new("inf", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        let y = m.add_cont("y", 0.0, 10.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 25.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let r = lint_model(&m);
        assert!(r.has("M007"), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn flags_static_unboundedness() {
        let mut m = Model::new("unb", Sense::Maximize);
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let r = lint_model(&m);
        // x is both dangling (M005) and the unboundedness witness (M008).
        assert!(r.has("M008"), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn reports_propagation_summary() {
        let mut m = Model::new("prop", Sense::Maximize);
        let q = m.add_cont("q", 0.0, 1000.0);
        let z = m.add_binary("z");
        m.add_constraint("hi", vec![(q, 1.0), (z, -400.0)], ConstraintOp::Le, 0.0);
        m.set_objective(vec![(q, 1.0)], 0.0);
        let r = lint_model(&m);
        assert!(r.has("M009"), "{r}");
    }

    #[test]
    fn jsonl_round_trips_through_obs_parser() {
        let mut m = Model::new("json", Sense::Maximize);
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let r = lint_model(&m);
        let jsonl = r.to_jsonl();
        let mut n = 0;
        for line in jsonl.lines() {
            let v = Value::parse(line).expect("valid JSON line");
            assert!(v.get("code").is_some() && v.get("severity").is_some());
            n += 1;
        }
        assert_eq!(n, r.findings.len());
    }

    #[test]
    fn invalid_model_reports_instead_of_panicking() {
        let mut m = Model::new("bad", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 1.0);
        m.add_constraint(
            "c",
            vec![(crate::model::VarId::from_index(7), 1.0)],
            ConstraintOp::Le,
            1.0,
        );
        m.set_objective(vec![(x, 1.0)], 0.0);
        let r = lint_model(&m);
        assert!(r.has("M007") && !r.is_clean());
        let _ = codes(&r);
    }

    #[test]
    fn optimizer_models_lint_clean_is_checked_in_core() {
        // The real cost_min/throughput models are linted in
        // billcap-core's tests, where they can be built; here just make
        // sure a representative piecewise structure passes.
        let mut m = Model::new("piecewise", Sense::Minimize);
        let lam = m.add_cont("lam_0", 0.0, 1.2);
        let q0 = m.add_cont("q_0_0", 0.0, 450.0);
        let q1 = m.add_cont("q_0_1", 0.0, 550.0);
        let z0 = m.add_binary("z_0_0");
        let z1 = m.add_binary("z_0_1");
        m.add_constraint(
            "lvl_hi_0_0",
            vec![(q0, 1.0), (z0, -449.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.add_constraint(
            "lvl_lo_0_0",
            vec![(q0, 1.0), (z0, -0.0)],
            ConstraintOp::Ge,
            0.0,
        );
        m.add_constraint(
            "lvl_hi_0_1",
            vec![(q1, 1.0), (z1, -550.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.add_constraint(
            "lvl_lo_0_1",
            vec![(q1, 1.0), (z1, -120.0)],
            ConstraintOp::Ge,
            0.0,
        );
        m.add_constraint(
            "one_level_0",
            vec![(z0, 1.0), (z1, 1.0)],
            ConstraintOp::Eq,
            1.0,
        );
        m.add_constraint(
            "power_0",
            vec![(q0, 1.0), (q1, 1.0), (lam, -430.0)],
            ConstraintOp::Eq,
            0.004,
        );
        m.add_constraint("cap_0", vec![(q0, 1.0), (q1, 1.0)], ConstraintOp::Le, 550.0);
        m.add_constraint("demand", vec![(lam, 1.0)], ConstraintOp::Eq, 0.9);
        m.set_objective(vec![(q0, 30.0), (q1, 45.0)], 0.0);
        let r = lint_model(&m);
        assert!(r.is_clean(), "{r}");
    }
}
