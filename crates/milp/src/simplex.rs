//! Dense two-phase primal simplex.
//!
//! The solver converts a [`Model`] into standard form
//! `min c'y  s.t.  Ay = b, y >= 0, b >= 0`:
//!
//! * a variable with a finite lower bound is shifted (`y = x - lb`);
//! * a variable with only a finite upper bound is flipped (`y = ub - x`);
//! * a free variable is split (`x = y+ - y-`);
//! * finite upper bounds become explicit `y <= ub - lb` rows;
//! * `<=` rows gain slacks, `>=` rows gain surpluses plus artificials,
//!   `==` rows gain artificials.
//!
//! Phase 1 minimizes the artificial sum; phase 2 optimizes the true
//! objective with artificials barred from entering. Pricing is Dantzig
//! (most negative reduced cost) with an automatic, permanent switch to
//! Bland's rule once the iteration count suggests cycling, which guarantees
//! termination on degenerate instances.

use crate::error::SolveError;
use crate::model::{ConstraintOp, Model, Sense};
use crate::solution::{Solution, Status};
use crate::TOL;

/// Column-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pricing {
    /// Most negative reduced cost; fast in practice, may cycle on
    /// degenerate problems (the solver falls back to Bland automatically).
    Dantzig,
    /// Bland's smallest-index rule; slower but provably terminating.
    Bland,
}

/// Configurable LP solver.
#[derive(Debug, Clone)]
pub struct LpSolver {
    /// Numerical tolerance for feasibility/optimality tests.
    pub tol: f64,
    /// Hard cap on simplex pivots per phase.
    pub max_iterations: usize,
    /// Initial pricing rule.
    pub pricing: Pricing,
    /// Iteration count after which Dantzig pricing permanently degrades to
    /// Bland's rule (anti-cycling safeguard).
    pub bland_after: usize,
    /// Consecutive degenerate pivots (ratio-test step ~zero) after which
    /// pricing permanently degrades to Bland's rule. Catches cycling long
    /// before the `bland_after` total-iteration trigger fires: a cycle is
    /// by definition an unbroken run of degenerate pivots, while healthy
    /// solves rarely chain more than a handful. Mirrors the revised
    /// engine's [`crate::revised::RevisedOptions::bland_after_degenerate`].
    pub bland_after_degenerate: usize,
}

impl Default for LpSolver {
    fn default() -> Self {
        Self {
            tol: TOL,
            max_iterations: 200_000,
            pricing: Pricing::Dantzig,
            bland_after: 20_000,
            bland_after_degenerate: 64,
        }
    }
}

/// How an original model variable maps into standard-form columns.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = y[col] + shift`
    Shifted { col: usize, shift: f64 },
    /// `x = shift - y[col]`
    Flipped { col: usize, shift: f64 },
    /// `x = y[pos] - y[neg]`
    Free { pos: usize, neg: usize },
}

/// A standard-form row before slack/artificial augmentation.
struct StdRow {
    coeffs: Vec<(usize, f64)>, // (column, coefficient)
    op: ConstraintOp,
    rhs: f64,
}

struct Tableau {
    /// `rows x (cols + 1)`; last entry of each row is the rhs.
    a: Vec<Vec<f64>>,
    /// Basis variable (column index) per row.
    basis: Vec<usize>,
    /// Phase-2 reduced-cost row (`cols + 1` wide; last entry = -objective).
    cost: Vec<f64>,
    /// Phase-1 reduced-cost row, present while artificials may be nonzero.
    cost1: Option<Vec<f64>>,
    cols: usize,
    /// First artificial column; columns `>= art_start` may never enter.
    art_start: usize,
}

impl Tableau {
    fn pivot(&mut self, r: usize, c: usize) {
        let piv = self.a[r][c];
        debug_assert!(piv.abs() > 0.0);
        let inv = 1.0 / piv;
        for v in self.a[r].iter_mut() {
            *v *= inv;
        }
        // Clone of the pivot row is avoided by split borrows below.
        for i in 0..self.a.len() {
            if i == r {
                continue;
            }
            let factor = self.a[i][c];
            if factor != 0.0 {
                let (row_i, row_r) = if i < r {
                    let (lo, hi) = self.a.split_at_mut(r);
                    (&mut lo[i], &hi[0])
                } else {
                    let (lo, hi) = self.a.split_at_mut(i);
                    (&mut hi[0], &lo[r])
                };
                for (vi, vr) in row_i.iter_mut().zip(row_r.iter()) {
                    *vi -= factor * vr;
                }
                // Clamp tiny residue so degenerate zeros stay exactly zero.
                row_i[c] = 0.0;
            }
        }
        let factor = self.cost[c];
        if factor != 0.0 {
            let row_r = &self.a[r];
            for (v, vr) in self.cost.iter_mut().zip(row_r.iter()) {
                *v -= factor * vr;
            }
            self.cost[c] = 0.0;
        }
        if let Some(cost1) = self.cost1.as_mut() {
            let factor = cost1[c];
            if factor != 0.0 {
                let row_r = &self.a[r];
                for (v, vr) in cost1.iter_mut().zip(row_r.iter()) {
                    *v -= factor * vr;
                }
                cost1[c] = 0.0;
            }
        }
        self.basis[r] = c;
    }

    fn rhs(&self, r: usize) -> f64 {
        self.a[r][self.cols]
    }
}

impl LpSolver {
    /// Solves the continuous relaxation of `model` (integrality is ignored).
    pub fn solve(&self, model: &Model) -> Result<Solution, SolveError> {
        model.validate()?;

        // --- 1. map variables to non-negative standard-form columns ---
        let mut maps = Vec::with_capacity(model.num_vars());
        let mut next_col = 0usize;
        let mut ub_rows: Vec<(usize, f64)> = Vec::new(); // y[col] <= bound
        for v in model.variables() {
            if v.lb.is_finite() {
                let col = next_col;
                next_col += 1;
                maps.push(VarMap::Shifted { col, shift: v.lb });
                if v.ub.is_finite() {
                    ub_rows.push((col, v.ub - v.lb));
                }
            } else if v.ub.is_finite() {
                let col = next_col;
                next_col += 1;
                maps.push(VarMap::Flipped { col, shift: v.ub });
            } else {
                let pos = next_col;
                let neg = next_col + 1;
                next_col += 2;
                maps.push(VarMap::Free { pos, neg });
            }
        }
        let struct_cols = next_col;

        // --- 2. transform constraint rows ---
        let mut rows: Vec<StdRow> = Vec::with_capacity(model.num_constraints() + ub_rows.len());
        for c in model.constraints() {
            let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(c.terms.len() + 1);
            let mut rhs = c.rhs;
            for &(vid, coeff) in &c.terms {
                match maps[vid.index()] {
                    VarMap::Shifted { col, shift } => {
                        rhs -= coeff * shift;
                        push_coeff(&mut coeffs, col, coeff);
                    }
                    VarMap::Flipped { col, shift } => {
                        rhs -= coeff * shift;
                        push_coeff(&mut coeffs, col, -coeff);
                    }
                    VarMap::Free { pos, neg } => {
                        push_coeff(&mut coeffs, pos, coeff);
                        push_coeff(&mut coeffs, neg, -coeff);
                    }
                }
            }
            rows.push(StdRow {
                coeffs,
                op: c.op,
                rhs,
            });
        }
        for &(col, bound) in &ub_rows {
            rows.push(StdRow {
                coeffs: vec![(col, 1.0)],
                op: ConstraintOp::Le,
                rhs: bound,
            });
        }

        // --- 3. objective in standard-form columns (always minimize) ---
        let obj_sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut c_std = vec![0.0; struct_cols];
        for &(vid, coeff) in model.objective() {
            let coeff = coeff * obj_sign;
            match maps[vid.index()] {
                VarMap::Shifted { col, .. } => c_std[col] += coeff,
                VarMap::Flipped { col, .. } => c_std[col] -= coeff,
                VarMap::Free { pos, neg } => {
                    c_std[pos] += coeff;
                    c_std[neg] -= coeff;
                }
            }
        }

        // --- 4. augment with slacks/artificials, b >= 0 ---
        let m = rows.len();
        // Count slack columns first so the layout is [struct | slack | art].
        let mut num_slack = 0usize;
        for row in &rows {
            // A row negated to make rhs non-negative flips Le<->Ge.
            let op = effective_op(row);
            if matches!(op, ConstraintOp::Le | ConstraintOp::Ge) {
                num_slack += 1;
            }
        }
        let slack_start = struct_cols;
        let art_start = slack_start + num_slack;
        // Upper bound on artificials: one per row.
        let mut a: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut basis = vec![usize::MAX; m];
        let mut next_slack = slack_start;
        let mut next_art = art_start;
        let total_cols_max = art_start + m;
        // Per original constraint: (column, sign) such that the optimal
        // dual (in minimization space) is `sign * cost_row[column]` — the
        // slack/surplus/artificial column of that row carries `-y_i`,
        // `+y_i` and `-y_i` respectively in the reduced-cost row, with an
        // extra flip when the row was negated for a non-negative rhs.
        let mut dual_sources: Vec<(usize, f64)> = Vec::with_capacity(model.num_constraints());
        for (i, row) in rows.iter().enumerate() {
            let mut dense = vec![0.0; total_cols_max + 1];
            let neg = row.rhs < 0.0;
            let sign = if neg { -1.0 } else { 1.0 };
            for &(col, coeff) in &row.coeffs {
                dense[col] += sign * coeff;
            }
            dense[total_cols_max] = sign * row.rhs;
            let op = effective_op(row);
            let dual_source = match op {
                ConstraintOp::Le => {
                    dense[next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                    (next_slack - 1, -1.0)
                }
                ConstraintOp::Ge => {
                    dense[next_slack] = -1.0;
                    next_slack += 1;
                    dense[next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                    (next_slack - 1, 1.0)
                }
                ConstraintOp::Eq => {
                    dense[next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                    (next_art - 1, -1.0)
                }
            };
            if i < model.num_constraints() {
                dual_sources.push((dual_source.0, dual_source.1 * sign));
            }
            a.push(dense);
        }
        let total_cols = next_art;
        // Shrink rows to the used width (rhs moves to index total_cols).
        for row in &mut a {
            let rhs = row[total_cols_max];
            row.truncate(total_cols);
            row.push(rhs);
        }
        let has_artificials = next_art > art_start;

        // Phase-2 cost row.
        let mut cost = vec![0.0; total_cols + 1];
        cost[..struct_cols].copy_from_slice(&c_std);
        // Phase-1 cost row: sum of artificial columns = 1 each.
        let cost1 = if has_artificials {
            let mut c1 = vec![0.0; total_cols + 1];
            c1[art_start..total_cols].fill(1.0);
            Some(c1)
        } else {
            None
        };

        let mut t = Tableau {
            a,
            basis,
            cost,
            cost1,
            cols: total_cols,
            art_start,
        };

        // Canonicalize cost rows w.r.t. the initial basis (only artificials
        // carry phase-1 cost; slacks carry no cost in either phase).
        for r in 0..m {
            let b = t.basis[r];
            if b >= art_start {
                if let Some(cost1) = t.cost1.as_mut() {
                    let row = &t.a[r];
                    for (v, vr) in cost1.iter_mut().zip(row.iter()) {
                        *v -= vr;
                    }
                }
            }
        }

        let mut iterations = 0usize;
        let mut degenerate = 0usize;

        // --- 5. phase 1 ---
        if has_artificials {
            self.optimize(&mut t, true, &mut iterations, &mut degenerate)?;
            let phase1_obj =
                // repolint-allow(unwrap): artificials imply a phase-1 cost row
                -t.cost1.as_ref().expect("phase-1 cost row")[total_cols];
            if phase1_obj > 1e-7 {
                return Err(SolveError::Infeasible);
            }
            // Drive remaining basic artificials out of the basis.
            let mut r = 0;
            while r < t.a.len() {
                if t.basis[r] >= art_start {
                    let mut pivoted = false;
                    for j in 0..art_start {
                        if t.a[r][j].abs() > self.tol {
                            t.pivot(r, j);
                            pivoted = true;
                            break;
                        }
                    }
                    if !pivoted {
                        // Redundant row: remove it.
                        t.a.remove(r);
                        t.basis.remove(r);
                        continue;
                    }
                }
                r += 1;
            }
            t.cost1 = None;
        }

        // --- 6. phase 2 ---
        self.optimize(&mut t, false, &mut iterations, &mut degenerate)?;

        // --- 7. extract primal values ---
        let mut y = vec![0.0; total_cols];
        for (r, &b) in t.basis.iter().enumerate() {
            y[b] = t.rhs(r);
        }
        let mut values = vec![0.0; model.num_vars()];
        for (i, map) in maps.iter().enumerate() {
            values[i] = match *map {
                VarMap::Shifted { col, shift } => y[col] + shift,
                VarMap::Flipped { col, shift } => shift - y[col],
                VarMap::Free { pos, neg } => y[pos] - y[neg],
            };
        }
        let objective = model.eval_objective(&values);

        // --- 8. extract duals (shadow prices) ---
        // In minimization space the reduced-cost row carries the negated
        // dual under each row's slack (see `dual_sources`); converting to
        // the model's own sense multiplies by `obj_sign` so that
        // `duals[i] = d(objective)/d(rhs_i)` in the model's sense.
        let duals = dual_sources
            .iter()
            .map(|&(col, sign)| {
                let d = sign * t.cost[col];
                // Snap float dust to zero for inactive constraints.
                let d = if d.abs() < self.tol { 0.0 } else { d };
                d * obj_sign
            })
            .collect();

        Ok(Solution {
            status: Status::Optimal,
            objective,
            values,
            iterations,
            degenerate,
            mip: None,
            duals: Some(duals),
        })
    }

    /// Runs primal simplex pivots on `t` until optimality for the active
    /// cost row (`phase1` selects which row prices the columns).
    /// `degenerate` accumulates pivots whose ratio-test step was ~zero.
    fn optimize(
        &self,
        t: &mut Tableau,
        phase1: bool,
        iterations: &mut usize,
        degenerate: &mut usize,
    ) -> Result<(), SolveError> {
        let cols = t.cols;
        // Anti-cycling: a run of `bland_after_degenerate` consecutive
        // degenerate pivots flips pricing to Bland's rule for the rest of
        // this phase (sticky — Bland guarantees termination, so once
        // cycling is suspected there is no reason to switch back).
        let mut consecutive_degenerate = 0usize;
        let mut sticky_bland = false;
        loop {
            if *iterations >= self.max_iterations {
                return Err(SolveError::IterationLimit {
                    iterations: *iterations,
                });
            }
            let bland = matches!(self.pricing, Pricing::Bland)
                || sticky_bland
                || *iterations >= self.bland_after;
            // Entering column. Artificials may enter only in phase 1.
            let limit = if phase1 { cols } else { t.art_start };
            let cost_row: &[f64] = if phase1 {
                t.cost1.as_ref().expect("phase-1 cost row") // repolint-allow(unwrap): phase1 implies the row
            } else {
                &t.cost
            };
            let mut entering: Option<usize> = None;
            if bland {
                for (j, &cj) in cost_row.iter().enumerate().take(limit) {
                    if cj < -self.tol {
                        entering = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = -self.tol;
                for (j, &cj) in cost_row.iter().enumerate().take(limit) {
                    if cj < best {
                        best = cj;
                        entering = Some(j);
                    }
                }
            }
            let Some(c) = entering else {
                return Ok(()); // optimal for this phase
            };

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..t.a.len() {
                let arc = t.a[r][c];
                if arc > self.tol {
                    let ratio = t.rhs(r) / arc;
                    let better = ratio < best_ratio - self.tol
                        || (ratio < best_ratio + self.tol
                            && leave.is_some_and(|lr| t.basis[r] < t.basis[lr]));
                    if better || leave.is_none() {
                        if ratio < best_ratio {
                            best_ratio = ratio;
                        }
                        leave = Some(r);
                    }
                }
            }
            let Some(r) = leave else {
                return Err(SolveError::Unbounded);
            };
            if best_ratio <= self.tol {
                *degenerate += 1;
                consecutive_degenerate += 1;
                if consecutive_degenerate >= self.bland_after_degenerate {
                    sticky_bland = true;
                }
            } else {
                consecutive_degenerate = 0;
            }
            t.pivot(r, c);
            *iterations += 1;
        }
    }
}

fn push_coeff(coeffs: &mut Vec<(usize, f64)>, col: usize, coeff: f64) {
    if let Some(entry) = coeffs.iter_mut().find(|(c, _)| *c == col) {
        entry.1 += coeff;
    } else {
        coeffs.push((col, coeff));
    }
}

fn effective_op(row: &StdRow) -> ConstraintOp {
    if row.rhs < 0.0 {
        match row.op {
            ConstraintOp::Le => ConstraintOp::Ge,
            ConstraintOp::Ge => ConstraintOp::Le,
            ConstraintOp::Eq => ConstraintOp::Eq,
        }
    } else {
        row.op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense, VarType};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_max_lp() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => obj 36 at (2, 6)
        let mut m = Model::new("dantzig", Sense::Maximize);
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        let y = m.add_cont("y", 0.0, f64::INFINITY);
        m.add_constraint("c1", vec![(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint("c2", vec![(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_constraint("c3", vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        m.set_objective(vec![(x, 3.0), (y, 5.0)], 0.0);
        let s = LpSolver::default().solve(&m).unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn min_with_ge_constraints_uses_phase1() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 => obj at (4, 0)? cost 8 vs (1,3): 11.
        let mut m = Model::new("ge", Sense::Minimize);
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        let y = m.add_cont("y", 0.0, f64::INFINITY);
        m.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 4.0);
        m.add_constraint("c2", vec![(x, 1.0)], ConstraintOp::Ge, 1.0);
        m.set_objective(vec![(x, 2.0), (y, 3.0)], 0.0);
        let s = LpSolver::default().solve(&m).unwrap();
        assert_close(s.objective, 8.0);
        assert_close(s.value(x), 4.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y  s.t. x + 2y == 6, x - y == 0  => x = y = 2, obj 4
        let mut m = Model::new("eq", Sense::Minimize);
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        let y = m.add_cont("y", 0.0, f64::INFINITY);
        m.add_constraint("c1", vec![(x, 1.0), (y, 2.0)], ConstraintOp::Eq, 6.0);
        m.add_constraint("c2", vec![(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 0.0);
        m.set_objective(vec![(x, 1.0), (y, 1.0)], 0.0);
        let s = LpSolver::default().solve(&m).unwrap();
        assert_close(s.objective, 4.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new("inf", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 1.0);
        m.add_constraint("c1", vec![(x, 1.0)], ConstraintOp::Ge, 2.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        assert_eq!(LpSolver::default().solve(&m), Err(SolveError::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new("unb", Sense::Maximize);
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        m.set_objective(vec![(x, 1.0)], 0.0);
        assert_eq!(LpSolver::default().solve(&m), Err(SolveError::Unbounded));
    }

    #[test]
    fn negative_lower_bounds_are_shifted() {
        // min x  s.t. x >= -5  => x = -5
        let mut m = Model::new("shift", Sense::Minimize);
        let x = m.add_cont("x", -5.0, 5.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let s = LpSolver::default().solve(&m).unwrap();
        assert_close(s.value(x), -5.0);
    }

    #[test]
    fn flipped_variable_with_only_upper_bound() {
        // max x  s.t. x <= 3 (lb = -inf)  => x = 3
        let mut m = Model::new("flip", Sense::Maximize);
        let x = m.add_cont("x", f64::NEG_INFINITY, 3.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let s = LpSolver::default().solve(&m).unwrap();
        assert_close(s.value(x), 3.0);
    }

    #[test]
    fn free_variable_split() {
        // min |ish|: min y s.t. y >= x - 2, y >= 2 - x, x free.
        // Any x in [?]: optimum y = 0 at x = 2.
        let mut m = Model::new("free", Sense::Minimize);
        let x = m.add_cont("x", f64::NEG_INFINITY, f64::INFINITY);
        let y = m.add_cont("y", 0.0, f64::INFINITY);
        m.add_constraint("a", vec![(y, 1.0), (x, -1.0)], ConstraintOp::Ge, -2.0);
        m.add_constraint("b", vec![(y, 1.0), (x, 1.0)], ConstraintOp::Ge, 2.0);
        m.set_objective(vec![(y, 1.0)], 0.0);
        let s = LpSolver::default().solve(&m).unwrap();
        assert_close(s.objective, 0.0);
        assert_close(s.value(x), 2.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate example (Beale's cycling LP under Dantzig).
        let mut m = Model::new("beale", Sense::Minimize);
        let x1 = m.add_cont("x1", 0.0, f64::INFINITY);
        let x2 = m.add_cont("x2", 0.0, f64::INFINITY);
        let x3 = m.add_cont("x3", 0.0, f64::INFINITY);
        let x4 = m.add_cont("x4", 0.0, f64::INFINITY);
        m.add_constraint(
            "c1",
            vec![(x1, 0.25), (x2, -8.0), (x3, -1.0), (x4, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.add_constraint(
            "c2",
            vec![(x1, 0.5), (x2, -12.0), (x3, -0.5), (x4, 3.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.add_constraint("c3", vec![(x3, 1.0)], ConstraintOp::Le, 1.0);
        m.set_objective(vec![(x1, -0.75), (x2, 150.0), (x3, -0.02), (x4, 6.0)], 0.0);
        let s = LpSolver::default().solve(&m).unwrap();
        // Optimum: x3 = 1 makes c2 allow x1 = 1 (0.5*1 - 0.5*1 = 0), giving
        // -0.75 - 0.02 = -0.77; x2/x4 only increase cost.
        assert_close(s.objective, -0.77);
        assert!(m.is_feasible(&s.values, 1e-7));
    }

    #[test]
    fn bland_pricing_gives_same_optimum() {
        let mut m = Model::new("b", Sense::Maximize);
        let x = m.add_cont("x", 0.0, 10.0);
        let y = m.add_cont("y", 0.0, 10.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 12.0);
        m.set_objective(vec![(x, 1.0), (y, 2.0)], 0.0);
        let solver = LpSolver {
            pricing: Pricing::Bland,
            ..Default::default()
        };
        let s = solver.solve(&m).unwrap();
        assert_close(s.objective, 22.0); // y = 10, x = 2
    }

    #[test]
    fn objective_constant_is_respected() {
        let mut m = Model::new("k", Sense::Minimize);
        let x = m.add_cont("x", 1.0, 2.0);
        m.set_objective(vec![(x, 1.0)], 100.0);
        let s = LpSolver::default().solve(&m).unwrap();
        assert_close(s.objective, 101.0);
    }

    #[test]
    fn empty_model_is_trivially_optimal() {
        let m = Model::new("empty", Sense::Minimize);
        let s = LpSolver::default().solve(&m).unwrap();
        assert_eq!(s.values.len(), 0);
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn redundant_equality_rows_are_handled() {
        // x + y == 2 stated twice; min x  => x = 0, y = 2.
        let mut m = Model::new("red", Sense::Minimize);
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        let y = m.add_cont("y", 0.0, f64::INFINITY);
        m.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 2.0);
        m.add_constraint("c2", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 2.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let s = LpSolver::default().solve(&m).unwrap();
        assert_close(s.objective, 0.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // -x <= -3  (i.e. x >= 3); min x => 3.
        let mut m = Model::new("neg", Sense::Minimize);
        let x = m.add_cont("x", 0.0, 10.0);
        m.add_constraint("c", vec![(x, -1.0)], ConstraintOp::Le, -3.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let s = LpSolver::default().solve(&m).unwrap();
        assert_close(s.value(x), 3.0);
    }

    #[test]
    fn solution_is_feasible_for_model() {
        let mut m = Model::new("feas", Sense::Maximize);
        let x = m.add_cont("x", 0.0, 7.0);
        let y = m.add_cont("y", 1.0, 9.0);
        m.add_constraint("c1", vec![(x, 2.0), (y, 1.0)], ConstraintOp::Le, 10.0);
        m.add_constraint("c2", vec![(x, 1.0), (y, 3.0)], ConstraintOp::Le, 15.0);
        m.set_objective(vec![(x, 1.0), (y, 1.0)], 0.0);
        let s = LpSolver::default().solve(&m).unwrap();
        assert!(m.is_feasible(&s.values, 1e-7));
    }

    /// Finite-difference check of the duals: perturb each constraint's rhs
    /// and compare the objective change against the reported shadow price.
    fn check_duals_by_perturbation(m: &Model) {
        let solver = LpSolver::default();
        let base = solver.solve(m).unwrap();
        let duals = base.duals.clone().expect("LP solve returns duals");
        let eps = 1e-4;
        for (i, d) in duals.iter().enumerate() {
            // Rebuild with the perturbed rhs (Model has no rhs mutator by
            // design; rebuilding keeps the test honest).
            let mut pert = Model::new("pert", m.sense);
            for v in m.variables() {
                pert.add_var(v.name.clone(), v.var_type, v.lb, v.ub);
            }
            for (j, c) in m.constraints().iter().enumerate() {
                let rhs = if j == i { c.rhs + eps } else { c.rhs };
                pert.add_constraint(c.name.clone(), c.terms.clone(), c.op, rhs);
            }
            pert.set_objective(m.objective().to_vec(), m.objective_constant());
            let p = solver.solve(&pert).unwrap();
            let fd = (p.objective - base.objective) / eps;
            assert!(
                (fd - d).abs() < 1e-4,
                "constraint {i}: finite diff {fd} vs dual {d}"
            );
        }
    }

    #[test]
    fn duals_max_problem_textbook() {
        // max 3x + 5y; x <= 4, 2y <= 12, 3x + 2y <= 18.
        // Known duals: (0, 3/2, 1).
        let mut m = Model::new("duals", Sense::Maximize);
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        let y = m.add_cont("y", 0.0, f64::INFINITY);
        m.add_constraint("c1", vec![(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint("c2", vec![(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_constraint("c3", vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        m.set_objective(vec![(x, 3.0), (y, 5.0)], 0.0);
        let s = LpSolver::default().solve(&m).unwrap();
        let d = s.duals.unwrap();
        assert!((d[0] - 0.0).abs() < 1e-9, "{d:?}");
        assert!((d[1] - 1.5).abs() < 1e-9, "{d:?}");
        assert!((d[2] - 1.0).abs() < 1e-9, "{d:?}");
        check_duals_by_perturbation(&m);
    }

    #[test]
    fn duals_min_problem_with_ge_and_eq() {
        // min 2x + 3y; x + y >= 4 (dual 2: x is marginal), x - y == 1.
        let mut m = Model::new("duals2", Sense::Minimize);
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        let y = m.add_cont("y", 0.0, f64::INFINITY);
        m.add_constraint("cover", vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 4.0);
        m.add_constraint("tie", vec![(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0);
        m.set_objective(vec![(x, 2.0), (y, 3.0)], 0.0);
        check_duals_by_perturbation(&m);
    }

    #[test]
    fn duals_satisfy_strong_duality() {
        // b'y == optimal objective when all variables have zero lower
        // bounds and no upper bounds (pure standard form).
        let mut m = Model::new("strong", Sense::Minimize);
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        let y = m.add_cont("y", 0.0, f64::INFINITY);
        let z = m.add_cont("z", 0.0, f64::INFINITY);
        m.add_constraint(
            "r1",
            vec![(x, 1.0), (y, 2.0), (z, 1.0)],
            ConstraintOp::Ge,
            10.0,
        );
        m.add_constraint("r2", vec![(x, 2.0), (y, 1.0)], ConstraintOp::Ge, 8.0);
        m.set_objective(vec![(x, 3.0), (y, 4.0), (z, 5.0)], 0.0);
        let s = LpSolver::default().solve(&m).unwrap();
        let d = s.duals.unwrap();
        let dual_obj = 10.0 * d[0] + 8.0 * d[1];
        assert!(
            (dual_obj - s.objective).abs() < 1e-8,
            "dual {dual_obj} vs primal {}",
            s.objective
        );
    }

    #[test]
    fn negated_row_duals_are_correct() {
        // -x <= -3 is x >= 3 in disguise; its shadow price must match the
        // undisguised formulation's.
        let mut m1 = Model::new("neg", Sense::Minimize);
        let x1 = m1.add_cont("x", 0.0, 10.0);
        m1.add_constraint("c", vec![(x1, -1.0)], ConstraintOp::Le, -3.0);
        m1.set_objective(vec![(x1, 2.0)], 0.0);
        check_duals_by_perturbation(&m1);
        let d1 = LpSolver::default().solve(&m1).unwrap().duals.unwrap()[0];
        // d(obj)/d(rhs): rhs -3 -> -3+eps means x >= 3-eps, obj 2*(3-eps):
        // derivative -2.
        assert!((d1 + 2.0).abs() < 1e-9, "{d1}");
    }

    #[test]
    fn integrality_is_ignored_by_lp() {
        let mut m = Model::new("relax", Sense::Maximize);
        let x = m.add_var("x", VarType::Integer, 0.0, f64::INFINITY);
        m.add_constraint("c", vec![(x, 2.0)], ConstraintOp::Le, 3.0);
        m.set_objective(vec![(x, 1.0)], 0.0);
        let s = LpSolver::default().solve(&m).unwrap();
        assert_close(s.value(x), 1.5);
    }
}
