//! Linear expressions over model variables.
//!
//! [`LinExpr`] is a small convenience layer: a sum of `(variable, coefficient)`
//! terms plus a constant, with operator overloading so model code can be
//! written close to the mathematical formulation:
//!
//! ```
//! use billcap_milp::{LinExpr, Model, Sense, VarType};
//! let mut m = Model::new("ex", Sense::Minimize);
//! let x = m.add_var("x", VarType::Continuous, 0.0, 1.0);
//! let y = m.add_var("y", VarType::Continuous, 0.0, 1.0);
//! let e = 2.0 * LinExpr::var(x) + LinExpr::var(y) - 3.0;
//! assert_eq!(e.coefficient(x), 2.0);
//! assert_eq!(e.constant(), -3.0);
//! ```

use crate::model::VarId;
use std::collections::BTreeMap;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A linear expression: `sum(coeff_i * var_i) + constant`.
///
/// Terms are stored in a `BTreeMap` keyed by variable so repeated additions
/// of the same variable accumulate into a single coefficient and iteration
/// order is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: BTreeMap<VarId, f64>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// An expression consisting of a single variable with coefficient one.
    pub fn var(v: VarId) -> Self {
        let mut e = Self::new();
        e.add_term(v, 1.0);
        e
    }

    /// A constant expression.
    pub fn constant_expr(c: f64) -> Self {
        Self {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// Builds an expression from `(variable, coefficient)` pairs.
    pub fn from_terms<I: IntoIterator<Item = (VarId, f64)>>(iter: I) -> Self {
        let mut e = Self::new();
        for (v, c) in iter {
            e.add_term(v, c);
        }
        e
    }

    /// Adds `coeff * var` to the expression, merging with any existing term.
    pub fn add_term(&mut self, v: VarId, coeff: f64) -> &mut Self {
        let entry = self.terms.entry(v).or_insert(0.0);
        *entry += coeff;
        if entry.abs() == 0.0 {
            self.terms.remove(&v);
        }
        self
    }

    /// Adds a constant offset.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coefficient(&self, v: VarId) -> f64 {
        self.terms.get(&v).copied().unwrap_or(0.0)
    }

    /// The constant offset.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Iterates over the non-zero `(variable, coefficient)` terms in
    /// deterministic (variable-index) order.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Number of distinct variables with a non-zero coefficient.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Evaluates the expression at a point given by `values[var.index()]`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(v, c)| c * values[v.index()])
                .sum::<f64>()
    }

    /// Consumes the expression, returning its term vector and constant.
    pub fn into_parts(self) -> (Vec<(VarId, f64)>, f64) {
        (self.terms.into_iter().collect(), self.constant)
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::var(v)
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant_expr(c)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        *self += -rhs;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: f64) -> LinExpr {
        if k == 0.0 {
            return LinExpr::new();
        }
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self.constant *= k;
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, e: LinExpr) -> LinExpr {
        e * self
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, c: f64) -> LinExpr {
        self.constant += c;
        self
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, c: f64) -> LinExpr {
        self.constant -= c;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense, VarType};

    fn two_vars() -> (Model, VarId, VarId) {
        let mut m = Model::new("t", Sense::Minimize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 1.0);
        (m, x, y)
    }

    #[test]
    fn terms_merge() {
        let (_m, x, _y) = two_vars();
        let e = LinExpr::var(x) + LinExpr::var(x);
        assert_eq!(e.coefficient(x), 2.0);
        assert_eq!(e.num_terms(), 1);
    }

    #[test]
    fn cancelling_terms_are_removed() {
        let (_m, x, _y) = two_vars();
        let e = LinExpr::var(x) - LinExpr::var(x);
        assert_eq!(e.num_terms(), 0);
        assert_eq!(e.coefficient(x), 0.0);
    }

    #[test]
    fn scalar_multiplication() {
        let (_m, x, y) = two_vars();
        let e = 3.0 * (LinExpr::var(x) + 2.0 * LinExpr::var(y) + 1.0);
        assert_eq!(e.coefficient(x), 3.0);
        assert_eq!(e.coefficient(y), 6.0);
        assert_eq!(e.constant(), 3.0);
    }

    #[test]
    fn multiply_by_zero_clears() {
        let (_m, x, _y) = two_vars();
        let e = (LinExpr::var(x) + 5.0) * 0.0;
        assert_eq!(e.num_terms(), 0);
        assert_eq!(e.constant(), 0.0);
    }

    #[test]
    fn eval_matches_manual_computation() {
        let (_m, x, y) = two_vars();
        let e = 2.0 * LinExpr::var(x) - LinExpr::var(y) + 4.0;
        let vals = vec![3.0, 5.0];
        assert_eq!(e.eval(&vals), 2.0 * 3.0 - 5.0 + 4.0);
    }

    #[test]
    fn negation() {
        let (_m, x, _y) = two_vars();
        let e = -(LinExpr::var(x) + 1.0);
        assert_eq!(e.coefficient(x), -1.0);
        assert_eq!(e.constant(), -1.0);
    }

    #[test]
    fn from_terms_accumulates_duplicates() {
        let (_m, x, y) = two_vars();
        let e = LinExpr::from_terms(vec![(x, 1.0), (y, 2.0), (x, 3.0)]);
        assert_eq!(e.coefficient(x), 4.0);
        assert_eq!(e.coefficient(y), 2.0);
    }
}
