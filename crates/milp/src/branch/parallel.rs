//! Shared-frontier parallel branch-and-bound.
//!
//! Workers run on [`billcap_rt::run_workers`] and pull open nodes from a
//! single best-bound heap behind a mutex. Each worker keeps its own
//! clone of the model (so LP solves never contend) and publishes
//! improving incumbents through [`Shared::offer_incumbent`]; the
//! incumbent *key* (objective in minimization space) is mirrored into an
//! `AtomicU64` with an order-preserving bit encoding, so the hot
//! global-bound prune is a single atomic load.
//!
//! # Determinism
//!
//! The search tree is a deterministic function of the model: a node's LP
//! relaxation, branching variable, and children depend only on the
//! node's bound box, never on exploration order. Parallelism changes
//! *which* nodes get pruned (the incumbent arrives in a different
//! order), but pruning only removes nodes whose relaxation bound is
//! within `gap_tol` of the incumbent — nodes that cannot contain a
//! solution better than `incumbent - slack`. For instances whose optimum
//! is unique and separated from the runner-up by more than the gap
//! tolerance (every instance this workspace produces; `gap_tol` defaults
//! to 1e-9 relative), the node that yields the optimal incumbent is
//! explored under every schedule, and equal keys imply bitwise-equal
//! objectives (`objective = sign * key` is exact for `sign = ±1`).
//! Hence parallel and sequential solves return identical objective
//! values; the reduction below additionally breaks equal-key ties by
//! lexicographically smaller value vectors. Note the tie-break only
//! orders incumbents that are actually *offered*: on an instance with
//! non-unique optima, a node holding an equal-objective alternative
//! vertex can be pruned (its bound ties the incumbent key) before it
//! offers, so value-vector determinism is guaranteed only when the
//! optimum is unique — the objective is schedule-independent always.

use super::{MipSolver, Node};
use crate::error::SolveError;
use crate::model::{Model, VarId};
use crate::solution::{MipStats, Solution, SolveTrace, Status};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering from poisoning: a poisoned lock means another
/// worker panicked, and that panic propagates when the scoped pool
/// joins, so the remaining workers need not panic a second time here.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Order-preserving encoding of an `f64` into a `u64`: for non-NaN
/// values, `a < b  ⇔  key_bits(a) < key_bits(b)`.
fn key_bits(k: f64) -> u64 {
    let b = k.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`key_bits`].
fn key_from_bits(b: u64) -> f64 {
    f64::from_bits(if b >> 63 == 1 { b & !(1 << 63) } else { !b })
}

/// Why the search stopped before exhausting the frontier.
enum Outcome {
    /// The relative gap fell below `gap_tol`; `bound_key` is the global
    /// dual bound (minimization space) at that moment.
    GapReached { bound_key: f64 },
    /// The node budget ran out; `bound_key` is the best bound among the
    /// unexplored nodes.
    NodeLimit { bound_key: f64 },
    /// A node relaxation failed with a non-pruning error.
    Error(SolveError),
}

/// The frontier and the bookkeeping needed for a valid global dual
/// bound: nodes currently being expanded are no longer in the heap, so
/// their bounds are tracked per worker in `in_flight`.
struct Frontier {
    heap: BinaryHeap<Node>,
    /// Bound of the node each worker is expanding; `f64::INFINITY` when
    /// the worker is idle.
    in_flight: Vec<f64>,
    /// Workers currently expanding a node.
    active: usize,
    /// Set when the search exhausted (empty heap, nobody active).
    finished: bool,
}

impl Frontier {
    /// Minimum over open and in-flight node bounds — a valid global dual
    /// bound in minimization space (`INFINITY` when nothing remains).
    fn global_bound(&self) -> f64 {
        let heap_best = self.heap.peek().map_or(f64::INFINITY, |n| n.bound);
        self.in_flight.iter().copied().fold(heap_best, f64::min)
    }
}

struct Shared<'a> {
    solver: &'a MipSolver,
    model: &'a Model,
    int_vars: &'a [VarId],
    sign: f64,
    /// Root bound box, for each worker's revised-startability check.
    root_bounds: Vec<(f64, f64)>,
    frontier: Mutex<Frontier>,
    work_ready: Condvar,
    /// [`key_bits`] of the incumbent key; monotonically decreasing.
    incumbent_bits: AtomicU64,
    incumbent: Mutex<Option<(f64, Solution)>>,
    nodes: AtomicUsize,
    lp_iterations: AtomicUsize,
    stop: AtomicBool,
    outcome: Mutex<Option<Outcome>>,
    /// Per-worker [`SolveTrace`]s merged here as workers exit.
    trace: Mutex<SolveTrace>,
}

/// Entry point used by [`MipSolver::solve`] when `threads > 1`.
pub(super) fn solve(
    solver: &MipSolver,
    model: &Model,
    int_vars: &[VarId],
    sign: f64,
    root_bounds: Vec<(f64, f64)>,
    threads: usize,
) -> Result<Solution, SolveError> {
    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bounds: root_bounds.clone(),
        bound: f64::NEG_INFINITY,
        depth: 0,
        basis: None,
    });
    let shared = Shared {
        solver,
        model,
        int_vars,
        sign,
        root_bounds,
        frontier: Mutex::new(Frontier {
            heap,
            in_flight: vec![f64::INFINITY; threads],
            active: 0,
            finished: false,
        }),
        work_ready: Condvar::new(),
        incumbent_bits: AtomicU64::new(key_bits(f64::INFINITY)),
        incumbent: Mutex::new(None),
        nodes: AtomicUsize::new(0),
        lp_iterations: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        outcome: Mutex::new(None),
        trace: Mutex::new(SolveTrace::default()),
    };
    let mut mip_span = billcap_obs::span("mip");
    billcap_rt::run_workers(threads, |w| shared.run_worker(w));
    let result = shared.into_result();
    super::finish_obs(&mut mip_span, result.as_ref().ok());
    result
}

impl Shared<'_> {
    fn incumbent_key(&self) -> f64 {
        key_from_bits(self.incumbent_bits.load(Ordering::Acquire))
    }

    /// Records an improving incumbent, returning whether it was accepted.
    /// Ties on the key keep the lexicographically smaller value vector,
    /// so the winning solution does not depend on worker scheduling.
    fn offer_incumbent(&self, key: f64, objective: f64, values: Vec<f64>) -> bool {
        let mut inc = lock(&self.incumbent);
        let accept = match &*inc {
            None => true,
            Some((k, sol)) => key < *k || (key == *k && values < sol.values),
        };
        if accept {
            self.incumbent_bits.store(key_bits(key), Ordering::Release);
            *inc = Some((
                key,
                Solution {
                    status: Status::Optimal,
                    objective,
                    values,
                    iterations: 0,
                    degenerate: 0,
                    mip: None,
                    duals: None,
                },
            ));
        }
        accept
    }

    /// Finishes the expansion of worker `w`'s node: pushes `children`,
    /// releases the in-flight slot, and wakes waiters. Returns the
    /// global dual bound after the update.
    fn complete(&self, w: usize, children: Vec<Node>) -> f64 {
        let mut f = lock(&self.frontier);
        for c in children {
            f.heap.push(c);
        }
        f.active -= 1;
        f.in_flight[w] = f64::INFINITY;
        let bound = f.global_bound();
        self.work_ready.notify_all();
        bound
    }

    /// Records the stop reason (first writer wins) and halts the search.
    fn finish(&self, outcome: Outcome) {
        {
            let mut slot = lock(&self.outcome);
            if slot.is_none() {
                *slot = Some(outcome);
            }
        }
        self.stop.store(true, Ordering::Release);
        let _f = lock(&self.frontier);
        self.work_ready.notify_all();
    }

    /// Stops the search once the relative gap closes. `bound_key` is the
    /// current global dual bound (minimization space).
    fn check_gap(&self, bound_key: f64) {
        if !bound_key.is_finite() {
            return;
        }
        let inc_key = self.incumbent_key();
        if !inc_key.is_finite() {
            return;
        }
        let gap = (inc_key - bound_key) / inc_key.abs().max(1.0);
        if gap <= self.solver.gap_tol {
            self.finish(Outcome::GapReached { bound_key });
        }
    }

    fn run_worker(&self, w: usize) {
        let mut trace = SolveTrace::default();
        self.worker_loop(w, &mut trace);
        lock(&self.trace).merge(&trace);
    }

    fn worker_loop(&self, w: usize, trace: &mut SolveTrace) {
        // Worker-local LP backend (revised engine + dense-fallback model
        // clone), so node solves never contend.
        let mut node_lp = super::NodeLp::new(self.solver, self.model, &self.root_bounds);
        let obs_on = billcap_obs::enabled();
        loop {
            let (node, depth_seen) = {
                let mut f = lock(&self.frontier);
                loop {
                    if self.stop.load(Ordering::Acquire) || f.finished {
                        f.finished = true;
                        self.work_ready.notify_all();
                        return;
                    }
                    if let Some(n) = f.heap.pop() {
                        f.active += 1;
                        f.in_flight[w] = n.bound;
                        // Open nodes plus the ones being expanded: the
                        // frontier as the sequential search would see it.
                        let depth = f.heap.len() + f.active;
                        trace.max_frontier = trace.max_frontier.max(depth);
                        break (n, f.heap.len());
                    }
                    if f.active == 0 {
                        f.finished = true;
                        self.work_ready.notify_all();
                        return;
                    }
                    f = self
                        .work_ready
                        .wait(f)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            if obs_on {
                billcap_obs::observe("milp.bnb.queue_depth", depth_seen as f64);
            }

            // Global-bound prune against the freshest incumbent.
            let inc_key = self.incumbent_key();
            if node.bound >= inc_key - self.solver.prune_slack(inc_key) {
                trace.pruned_by_bound += 1;
                self.complete(w, Vec::new());
                continue;
            }

            // Node budget (counts expanded nodes, like the sequential
            // search).
            let seen = self.nodes.fetch_add(1, Ordering::Relaxed);
            trace.max_depth = trace.max_depth.max(node.depth);
            if seen >= self.solver.max_nodes {
                self.nodes.fetch_sub(1, Ordering::Relaxed);
                let node_bound = node.bound;
                let bound = self.complete(w, Vec::new());
                self.finish(Outcome::NodeLimit {
                    bound_key: node_bound.min(bound),
                });
                continue;
            }

            let lp_sol =
                match node_lp.solve(self.model, &node.bounds, node.basis.as_ref(), false, trace) {
                    Ok(s) => s,
                    Err(SolveError::Infeasible) => {
                        trace.pruned_infeasible += 1;
                        let bound = self.complete(w, Vec::new());
                        self.check_gap(bound);
                        continue;
                    }
                    Err(e) => {
                        self.complete(w, Vec::new());
                        self.finish(Outcome::Error(e));
                        continue;
                    }
                };
            self.lp_iterations
                .fetch_add(lp_sol.iterations, Ordering::Relaxed);
            trace.degenerate_pivots += lp_sol.degenerate;
            if obs_on {
                billcap_obs::observe("milp.lp.iterations_per_node", lp_sol.iterations as f64);
            }
            let node_key = self.sign * lp_sol.objective;
            let inc_key = self.incumbent_key();
            if node_key >= inc_key - self.solver.prune_slack(inc_key) {
                trace.pruned_by_bound += 1;
                let bound = self.complete(w, Vec::new());
                self.check_gap(bound);
                continue;
            }

            match self.solver.select_branch_var(self.int_vars, &lp_sol.values) {
                None => {
                    // Integer feasible: round off float noise and offer.
                    let mut values = lp_sol.values;
                    for &v in self.int_vars {
                        values[v.index()] = values[v.index()].round();
                    }
                    let objective = self.model.eval_objective(&values);
                    let key = self.sign * objective;
                    if key < inc_key && self.offer_incumbent(key, objective, values) {
                        trace.incumbent_updates += 1;
                    }
                    let bound = self.complete(w, Vec::new());
                    self.check_gap(bound);
                }
                Some((v, x)) => {
                    let (lb, ub) = node.bounds[v.index()];
                    let down_ub = x.floor();
                    let up_lb = x.ceil();
                    let mut children = Vec::with_capacity(2);
                    if down_ub >= lb - self.solver.int_tol {
                        let mut b = node.bounds.clone();
                        b[v.index()] = (lb, down_ub);
                        children.push(Node {
                            bounds: b,
                            bound: node_key,
                            depth: node.depth + 1,
                            basis: lp_sol.basis.clone(),
                        });
                    }
                    if up_lb <= ub + self.solver.int_tol {
                        let mut b = node.bounds;
                        b[v.index()] = (up_lb, ub);
                        children.push(Node {
                            bounds: b,
                            bound: node_key,
                            depth: node.depth + 1,
                            basis: lp_sol.basis,
                        });
                    }
                    let bound = self.complete(w, children);
                    self.check_gap(bound);
                }
            }
        }
    }

    /// Assembles the final [`Solution`] after all workers joined.
    fn into_result(self) -> Result<Solution, SolveError> {
        let nodes = self.nodes.into_inner();
        let lp_iterations = self.lp_iterations.into_inner();
        let incumbent = self
            .incumbent
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let outcome = self
            .outcome
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let trace = self
            .trace
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let sign = self.sign;
        match outcome {
            Some(Outcome::Error(e)) => Err(e),
            Some(Outcome::GapReached { bound_key }) => {
                let (key, mut sol) =
                    // repolint-allow(unwrap): GapReached is only produced with an incumbent
                    incumbent.expect("gap stop implies an incumbent");
                sol.iterations = lp_iterations;
                sol.degenerate = trace.degenerate_pivots;
                // A raced bound snapshot can momentarily pass the incumbent;
                // the incumbent itself is always a valid dual bound, so clamp.
                let bound_key = bound_key.min(key);
                let gap = ((key - bound_key) / key.abs().max(1.0)).max(0.0);
                sol.mip = Some(MipStats {
                    nodes,
                    lp_iterations,
                    best_bound: sign * bound_key,
                    gap,
                    trace,
                });
                Ok(sol)
            }
            Some(Outcome::NodeLimit { bound_key }) => match incumbent {
                Some((key, mut sol)) => {
                    sol.status = Status::Feasible;
                    sol.iterations = lp_iterations;
                    sol.degenerate = trace.degenerate_pivots;
                    let bound_key = bound_key.min(key);
                    let gap = (key - bound_key).abs() / sol.objective.abs().max(1.0);
                    sol.mip = Some(MipStats {
                        nodes,
                        lp_iterations,
                        best_bound: sign * bound_key,
                        gap,
                        trace,
                    });
                    Ok(sol)
                }
                None => Err(SolveError::NodeLimit { nodes }),
            },
            None => match incumbent {
                Some((_, mut sol)) => {
                    sol.iterations = lp_iterations;
                    sol.degenerate = trace.degenerate_pivots;
                    sol.mip = Some(MipStats {
                        nodes,
                        lp_iterations,
                        best_bound: sol.objective,
                        gap: 0.0,
                        trace,
                    });
                    Ok(sol)
                }
                None => Err(SolveError::Infeasible),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_bits_preserve_order() {
        let vals = [
            f64::NEG_INFINITY,
            -1.5e300,
            -2.0,
            -0.0,
            0.0,
            1e-300,
            3.25,
            f64::INFINITY,
        ];
        for pair in vals.windows(2) {
            assert!(
                key_bits(pair[0]) <= key_bits(pair[1]),
                "{} vs {}",
                pair[0],
                pair[1]
            );
        }
        for &v in &vals {
            assert_eq!(key_from_bits(key_bits(v)), v);
        }
    }
}
