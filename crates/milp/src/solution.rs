//! Solver output types.

use crate::model::VarId;
use crate::INT_TOL;

/// Quality of a returned solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Proven optimal (within tolerance).
    Optimal,
    /// Integer-feasible but optimality not proven (e.g. the node limit was
    /// reached while an incumbent existed).
    Feasible,
}

/// Deterministic search-shape counters from a branch-and-bound solve.
///
/// Collected unconditionally (the counters are a handful of integer
/// increments per node, far below LP-solve cost) so every [`MipStats`]
/// carries them regardless of whether tracing is enabled. Counts hold
/// no timing, so they stay comparable across machines; note that under
/// a parallel solve the *pruning* counts depend on worker scheduling
/// (the incumbent arrives in a different order), while the objective
/// remains deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveTrace {
    /// Nodes discarded because their relaxation bound could not beat the
    /// incumbent (both pre-LP pops and post-LP bound prunes).
    pub pruned_by_bound: usize,
    /// Nodes whose LP relaxation was infeasible.
    pub pruned_infeasible: usize,
    /// Times a new incumbent replaced (or first established) the best
    /// known integer solution.
    pub incumbent_updates: usize,
    /// Deepest expanded node.
    pub max_depth: usize,
    /// Largest open-node frontier observed.
    pub max_frontier: usize,
    /// Total degenerate simplex pivots (ratio-test steps with ~zero step
    /// length) across all node relaxations.
    pub degenerate_pivots: usize,
    /// Basis factorizations performed by the revised simplex (one per
    /// node solve, plus any mid-solve refactorizations). Zero when the
    /// dense fallback handled every node.
    pub factorizations: usize,
    /// Mid-solve refactorizations: the eta file hit the refactorization
    /// interval, or a pivot looked numerically unstable.
    pub refactorizations: usize,
    /// Bound flips performed by the dual ratio test — nonbasic variables
    /// hopped to their opposite bound without a basis change (the
    /// long-step payoff of bounded-variable handling).
    pub bound_flips: usize,
    /// Node relaxations that started from the parent's basis instead of
    /// a cold all-slack basis.
    pub warm_starts: usize,
}

impl SolveTrace {
    /// Merges a worker's trace into this one (sums for counts, max for
    /// the depth/frontier water marks).
    pub fn merge(&mut self, other: &SolveTrace) {
        self.pruned_by_bound += other.pruned_by_bound;
        self.pruned_infeasible += other.pruned_infeasible;
        self.incumbent_updates += other.incumbent_updates;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.max_frontier = self.max_frontier.max(other.max_frontier);
        self.degenerate_pivots += other.degenerate_pivots;
        self.factorizations += other.factorizations;
        self.refactorizations += other.refactorizations;
        self.bound_flips += other.bound_flips;
        self.warm_starts += other.warm_starts;
    }
}

/// Search statistics from a MIP solve.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MipStats {
    /// Branch-and-bound nodes whose LP relaxation was solved.
    pub nodes: usize,
    /// Total simplex iterations across all node relaxations.
    pub lp_iterations: usize,
    /// Best dual bound at termination (equals the objective when optimal).
    pub best_bound: f64,
    /// Relative optimality gap `|obj - bound| / max(1, |obj|)`.
    pub gap: f64,
    /// Search-shape counters (prunes, incumbent updates, depth, …).
    pub trace: SolveTrace,
}

impl MipStats {
    /// The gap implied by an objective value and [`MipStats::best_bound`],
    /// using the same normalization as the reported [`MipStats::gap`].
    /// Certification compares the two to catch stale or fabricated stats.
    pub fn implied_gap(&self, objective: f64) -> f64 {
        (objective - self.best_bound).abs() / objective.abs().max(1.0)
    }
}

/// A primal solution to an LP or MILP.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Whether the solution is proven optimal.
    pub status: Status,
    /// Objective value in the model's own sense (a `Maximize` model reports
    /// the maximized value).
    pub objective: f64,
    /// Variable values, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Simplex iterations used (for an LP) or accumulated (for a MIP).
    pub iterations: usize,
    /// Degenerate simplex pivots among [`Solution::iterations`] — ratio-test
    /// steps that changed the basis without moving the objective. A high
    /// ratio signals a degenerate instance (and explains Bland fallbacks).
    pub degenerate: usize,
    /// Branch-and-bound statistics; `None` for pure LP solves.
    pub mip: Option<MipStats>,
    /// Constraint duals (shadow prices) in the model's sense:
    /// `duals[i] = d(objective)/d(rhs_i)`. Populated by LP solves;
    /// `None` for MIP solutions (integer programs have no LP duals).
    pub duals: Option<Vec<f64>>,
}

impl Solution {
    /// Value of a variable in this solution.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// Value of a variable rounded to the nearest integer — convenience for
    /// integer and binary variables whose LP values carry float noise.
    ///
    /// Debug builds assert the value is within [`INT_TOL`] of an integer;
    /// silently rounding a genuinely fractional value would hide a solver
    /// bug. Use [`Solution::try_int_value`] when the solution is untrusted.
    pub fn int_value(&self, v: VarId) -> i64 {
        let x = self.values[v.index()];
        debug_assert!(
            (x - x.round()).abs() <= INT_TOL,
            "int_value on fractional value {x} (var #{})",
            v.index()
        );
        x.round() as i64
    }

    /// Value of a variable as an integer, or `None` when it is farther than
    /// [`INT_TOL`] from any integer (or non-finite). Auditors use this so a
    /// fractional binary is reported instead of silently rounded.
    pub fn try_int_value(&self, v: VarId) -> Option<i64> {
        let x = self.values[v.index()];
        if x.is_finite() && (x - x.round()).abs() <= INT_TOL {
            Some(x.round() as i64)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Solution {
            status: Status::Optimal,
            objective: 1.5,
            values: vec![0.999999999, 2.0],
            iterations: 3,
            degenerate: 0,
            mip: None,
            duals: None,
        };
        assert_eq!(s.value(VarId(1)), 2.0);
        assert_eq!(s.int_value(VarId(0)), 1);
    }

    #[test]
    fn try_int_value_accepts_near_integers_only() {
        let s = Solution {
            status: Status::Optimal,
            objective: 0.0,
            values: vec![0.999999999, 0.4, f64::NAN],
            iterations: 0,
            degenerate: 0,
            mip: None,
            duals: None,
        };
        assert_eq!(s.try_int_value(VarId(0)), Some(1));
        assert_eq!(s.try_int_value(VarId(1)), None);
        assert_eq!(s.try_int_value(VarId(2)), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "fractional")]
    fn int_value_debug_asserts_integrality() {
        let s = Solution {
            status: Status::Optimal,
            objective: 0.0,
            values: vec![0.4],
            iterations: 0,
            degenerate: 0,
            mip: None,
            duals: None,
        };
        let _ = s.int_value(VarId(0));
    }

    #[test]
    fn implied_gap_matches_definition() {
        let stats = MipStats {
            nodes: 1,
            lp_iterations: 1,
            best_bound: 90.0,
            gap: 0.1,
            trace: SolveTrace::default(),
        };
        assert!((stats.implied_gap(100.0) - 0.1).abs() < 1e-12);
        // Small objectives normalize by 1, not by |obj|.
        let small = MipStats {
            best_bound: 0.90,
            ..stats
        };
        assert!((small.implied_gap(0.95) - 0.05).abs() < 1e-12);
    }
}
