//! Solver output types.

use crate::model::VarId;

/// Quality of a returned solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Proven optimal (within tolerance).
    Optimal,
    /// Integer-feasible but optimality not proven (e.g. the node limit was
    /// reached while an incumbent existed).
    Feasible,
}

/// Search statistics from a MIP solve.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MipStats {
    /// Branch-and-bound nodes whose LP relaxation was solved.
    pub nodes: usize,
    /// Total simplex iterations across all node relaxations.
    pub lp_iterations: usize,
    /// Best dual bound at termination (equals the objective when optimal).
    pub best_bound: f64,
    /// Relative optimality gap `|obj - bound| / max(1, |obj|)`.
    pub gap: f64,
}

/// A primal solution to an LP or MILP.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Whether the solution is proven optimal.
    pub status: Status,
    /// Objective value in the model's own sense (a `Maximize` model reports
    /// the maximized value).
    pub objective: f64,
    /// Variable values, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Simplex iterations used (for an LP) or accumulated (for a MIP).
    pub iterations: usize,
    /// Branch-and-bound statistics; `None` for pure LP solves.
    pub mip: Option<MipStats>,
    /// Constraint duals (shadow prices) in the model's sense:
    /// `duals[i] = d(objective)/d(rhs_i)`. Populated by LP solves;
    /// `None` for MIP solutions (integer programs have no LP duals).
    pub duals: Option<Vec<f64>>,
}

impl Solution {
    /// Value of a variable in this solution.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// Value of a variable rounded to the nearest integer — convenience for
    /// integer and binary variables whose LP values carry float noise.
    pub fn int_value(&self, v: VarId) -> i64 {
        self.values[v.index()].round() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Solution {
            status: Status::Optimal,
            objective: 1.5,
            values: vec![0.999999999, 2.0],
            iterations: 3,
            mip: None,
            duals: None,
        };
        assert_eq!(s.value(VarId(1)), 2.0);
        assert_eq!(s.int_value(VarId(0)), 1);
    }
}
