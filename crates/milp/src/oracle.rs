//! Exhaustive brute-force oracle for tiny MILPs.
//!
//! Differential testing needs a second, independent answer to compare the
//! branch-and-bound solver against. For models with a handful of bounded
//! integer variables the honest way to get one is exhaustion: enumerate
//! every integer assignment, check feasibility (solving the residual LP
//! when continuous variables remain), and keep the best.
//!
//! The oracle shares the simplex solver with `MipSolver` only for the
//! *continuous* part of mixed models; for pure-integer models it evaluates
//! constraints directly and never touches the simplex at all, so a simplex
//! bug cannot mask itself. Enumeration is capped — this is a test oracle
//! for ≤ ~12 binaries, not a solver.

use crate::error::SolveError;
use crate::model::{Model, Sense};
use crate::simplex::LpSolver;
use crate::solution::{MipStats, Solution, Status};
use crate::INT_TOL;

/// Default cap on enumerated integer assignments (2^16 ≈ 16 binaries).
pub const DEFAULT_MAX_COMBINATIONS: u64 = 1 << 16;

/// Solves `model` by exhaustive enumeration with the default combination
/// cap. See [`brute_force_solve_capped`].
pub fn brute_force_solve(model: &Model) -> Result<Solution, SolveError> {
    brute_force_solve_capped(model, DEFAULT_MAX_COMBINATIONS)
}

/// Solves `model` by enumerating every assignment of its integer variables
/// (which must all have finite bounds), solving the residual LP when
/// continuous variables remain and evaluating constraints directly when
/// not. Ties are broken toward the first assignment in odometer order, so
/// the result is deterministic.
///
/// Errors with [`SolveError::InvalidModel`] when an integer variable is
/// unbounded or the assignment count exceeds `max_combinations`, and with
/// [`SolveError::Infeasible`] when no assignment is feasible.
pub fn brute_force_solve_capped(
    model: &Model,
    max_combinations: u64,
) -> Result<Solution, SolveError> {
    model.validate()?;
    let int_vars = model.integer_vars();
    let lp = LpSolver::default();

    if int_vars.is_empty() {
        let mut sol = lp.solve(model)?;
        sol.mip = Some(MipStats {
            nodes: 1,
            lp_iterations: sol.iterations,
            best_bound: sol.objective,
            gap: 0.0,
            trace: Default::default(),
        });
        return Ok(sol);
    }

    // Integer domains, rounded inward from the (possibly fractional) bounds.
    let mut domains: Vec<(i64, i64)> = Vec::with_capacity(int_vars.len());
    let mut combinations: u64 = 1;
    for &v in &int_vars {
        let var = &model.variables()[v.index()];
        if !var.lb.is_finite() || !var.ub.is_finite() {
            return Err(SolveError::InvalidModel(format!(
                "brute-force oracle needs finite bounds on integer variable '{}'",
                var.name
            )));
        }
        let lo = (var.lb - INT_TOL).ceil() as i64;
        let hi = (var.ub + INT_TOL).floor() as i64;
        if lo > hi {
            return Err(SolveError::Infeasible);
        }
        combinations = combinations
            .checked_mul((hi - lo + 1) as u64)
            .filter(|&c| c <= max_combinations)
            .ok_or_else(|| {
                SolveError::InvalidModel(format!(
                    "brute-force oracle: more than {max_combinations} integer assignments"
                ))
            })?;
        domains.push((lo, hi));
    }

    let has_continuous = model.num_vars() > int_vars.len();
    let sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let mut work = model.clone();
    let mut assignment: Vec<i64> = domains.iter().map(|&(lo, _)| lo).collect();
    let mut best: Option<(f64, Vec<f64>)> = None;
    let mut nodes = 0usize;
    let mut lp_iterations = 0usize;

    loop {
        nodes += 1;
        let candidate: Option<Vec<f64>> = if has_continuous {
            // Fix the integers and solve the residual LP over the rest.
            for (k, &v) in int_vars.iter().enumerate() {
                let x = assignment[k] as f64;
                work.set_var_bounds(v, x, x);
            }
            match lp.solve(&work) {
                Ok(s) => {
                    lp_iterations += s.iterations;
                    Some(s.values)
                }
                Err(SolveError::Infeasible) => None,
                Err(e) => return Err(e),
            }
        } else {
            let mut values = vec![0.0; model.num_vars()];
            for (k, &v) in int_vars.iter().enumerate() {
                values[v.index()] = assignment[k] as f64;
            }
            model.is_feasible(&values, crate::TOL).then_some(values)
        };
        if let Some(values) = candidate {
            let key = sign * model.eval_objective(&values);
            if best.as_ref().is_none_or(|(bk, _)| key < *bk) {
                best = Some((key, values));
            }
        }

        // Odometer increment over the integer domains.
        let mut pos = 0;
        loop {
            if pos == assignment.len() {
                let (key, values) = best.ok_or(SolveError::Infeasible)?;
                let objective = sign * key;
                return Ok(Solution {
                    status: Status::Optimal,
                    objective,
                    values,
                    iterations: lp_iterations,
                    degenerate: 0,
                    mip: Some(MipStats {
                        nodes,
                        lp_iterations,
                        best_bound: objective,
                        gap: 0.0,
                        trace: Default::default(),
                    }),
                    duals: None,
                });
            }
            if assignment[pos] < domains[pos].1 {
                assignment[pos] += 1;
                break;
            }
            assignment[pos] = domains[pos].0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::MipSolver;
    use crate::model::{ConstraintOp, VarType};

    #[test]
    fn oracle_matches_solver_on_knapsack() {
        let mut m = Model::new("knap", Sense::Maximize);
        let items: Vec<_> = (0..6).map(|i| m.add_binary(format!("x{i}"))).collect();
        let weights = [3.0, 4.0, 2.0, 5.0, 1.0, 6.0];
        let values = [10.0, 13.0, 7.0, 16.0, 2.0, 19.0];
        m.add_constraint(
            "w",
            items.iter().copied().zip(weights).collect(),
            ConstraintOp::Le,
            10.0,
        );
        m.set_objective(items.iter().copied().zip(values).collect(), 0.0);
        let oracle = brute_force_solve(&m).unwrap();
        let solver = MipSolver::default().solve(&m).unwrap();
        assert!((oracle.objective - solver.objective).abs() < 1e-9);
    }

    #[test]
    fn oracle_solves_mixed_integer_models() {
        // max x + 10 b  s.t.  x + 4 b <= 5,  x continuous in [0, 4].
        let mut m = Model::new("mixed", Sense::Maximize);
        let x = m.add_cont("x", 0.0, 4.0);
        let b = m.add_binary("b");
        m.add_constraint("c", vec![(x, 1.0), (b, 4.0)], ConstraintOp::Le, 5.0);
        m.set_objective(vec![(x, 1.0), (b, 10.0)], 0.0);
        let sol = brute_force_solve(&m).unwrap();
        // b = 1 leaves x = 1: objective 11 beats b = 0's 4.
        assert!((sol.objective - 11.0).abs() < 1e-9, "{}", sol.objective);
        assert!((sol.value(b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn oracle_handles_general_integers() {
        // min 2j + 3k  s.t.  j + k >= 4, integers in [0, 5].
        let mut m = Model::new("gen", Sense::Minimize);
        let j = m.add_var("j", VarType::Integer, 0.0, 5.0);
        let k = m.add_var("k", VarType::Integer, 0.0, 5.0);
        m.add_constraint("cover", vec![(j, 1.0), (k, 1.0)], ConstraintOp::Ge, 4.0);
        m.set_objective(vec![(j, 2.0), (k, 3.0)], 1.0);
        let sol = brute_force_solve(&m).unwrap();
        assert!((sol.objective - 9.0).abs() < 1e-9); // j = 4, k = 0, +1
    }

    #[test]
    fn oracle_reports_infeasible() {
        let mut m = Model::new("inf", Sense::Minimize);
        let b = m.add_binary("b");
        m.add_constraint("c", vec![(b, 1.0)], ConstraintOp::Ge, 2.0);
        m.set_objective(vec![(b, 1.0)], 0.0);
        assert!(matches!(brute_force_solve(&m), Err(SolveError::Infeasible)));
    }

    #[test]
    fn oracle_rejects_unbounded_integers_and_blowups() {
        let mut m = Model::new("unb", Sense::Minimize);
        m.add_var("k", VarType::Integer, 0.0, f64::INFINITY);
        m.set_objective(vec![], 0.0);
        assert!(matches!(
            brute_force_solve(&m),
            Err(SolveError::InvalidModel(_))
        ));

        let mut big = Model::new("big", Sense::Minimize);
        for i in 0..8 {
            big.add_binary(format!("b{i}"));
        }
        big.set_objective(vec![], 0.0);
        assert!(matches!(
            brute_force_solve_capped(&big, 100),
            Err(SolveError::InvalidModel(_))
        ));
    }

    #[test]
    fn pure_lp_passthrough_gets_mip_stats() {
        let mut m = Model::new("lp", Sense::Maximize);
        let x = m.add_cont("x", 0.0, 3.0);
        m.set_objective(vec![(x, 2.0)], 0.0);
        let sol = brute_force_solve(&m).unwrap();
        assert!((sol.objective - 6.0).abs() < 1e-9);
        let stats = sol.mip.unwrap();
        assert_eq!(stats.nodes, 1);
        assert_eq!(stats.gap, 0.0);
    }
}
