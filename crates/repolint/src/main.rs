//! Source-level correctness gates for the billcap workspace.
//!
//! A zero-dependency lexical linter that enforces the repository's
//! layering rules — the properties `cargo clippy` cannot see because
//! they are *policy*, not language:
//!
//! * `unwrap` — no `.unwrap()` / `.expect(` in library code. Panics
//!   belong to callers (binaries, tests); libraries return `Result`.
//! * `timing` — no `Instant::now` / `SystemTime` outside `billcap-obs`
//!   and `billcap-rt`. Wall-clock reads make runs non-reproducible, so
//!   they are confined to the observability/runtime layer (library code
//!   measures through `billcap_obs::Stopwatch`).
//! * `thread-spawn` — no `std::thread::spawn` outside `billcap-rt`.
//!   Parallelism goes through the runtime crate's scoped pools so
//!   worker counts, panics and trace merging stay managed.
//! * `forbid-unsafe` — every crate root carries
//!   `#![forbid(unsafe_code)]`.
//! * `hot-alloc` — no `Vec::new()` / `vec![` inside a region marked
//!   `// repolint-hot-start(label)` … `// repolint-hot-end`. Hot
//!   regions are per-hour simulation loops that run hundreds of
//!   thousands of times per Monte-Carlo run; allocations there belong
//!   in a reusable scratch (see `MonthScratch` in `billcap-sim`).
//!
//! Test code (`#[cfg(test)]` items, tracked by brace depth) is exempt
//! from the first three rules. A deliberate exception is waived with a
//! trailing or preceding comment:
//!
//! ```text
//! // repolint-allow(unwrap): length checked two lines above
//! ```
//!
//! Waivers are themselves linted (`stale-waiver`): a `repolint-allow`
//! whose pattern no longer matches anything suppresses nothing and is
//! reported at its own line, so refactors cannot leave dead waivers
//! behind. A waiver counts as used when its *pattern* matches, even if
//! the rule does not apply to that file — moving a waived line between
//! library and binary code does not make the waiver stale. Doc comments
//! (`///`, `//!`) never mint waivers, so documentation may show the
//! syntax (as above) without creating one.
//!
//! Usage: `repolint [workspace-root]` — prints `path:line: [rule] msg`
//! per violation and exits non-zero if any were found.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

/// Crates whose library code may read the wall clock.
const TIMING_ALLOWED: &[&str] = &["obs", "rt", "repolint"];
/// Crates whose library code may spawn raw threads.
const SPAWN_ALLOWED: &[&str] = &["rt"];

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    match run(&root) {
        Ok(violations) => {
            if violations.is_empty() {
                println!("repolint: clean");
            } else {
                for v in &violations {
                    println!("{v}");
                }
                println!("repolint: {} violation(s)", violations.len());
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("repolint: {e}");
            std::process::exit(2);
        }
    }
}

fn run(root: &Path) -> Result<Vec<String>, String> {
    let mut crates: Vec<(String, PathBuf)> = Vec::new();
    // The workspace crates plus the root `billcap` package.
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir).map_err(|e| {
        format!(
            "{}: {e} (run from the workspace root)",
            crates_dir.display()
        )
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.join("Cargo.toml").is_file() {
            let name = entry.file_name().to_string_lossy().into_owned();
            crates.push((name, path));
        }
    }
    crates.sort();
    crates.push(("billcap".to_string(), root.to_path_buf()));

    let mut violations = Vec::new();
    for (name, dir) in &crates {
        check_crate(root, name, dir, &mut violations)?;
    }
    Ok(violations)
}

fn check_crate(
    root: &Path,
    name: &str,
    dir: &Path,
    violations: &mut Vec<String>,
) -> Result<(), String> {
    let src = dir.join("src");
    let lib = src.join("lib.rs");
    let is_library = lib.is_file();

    // forbid-unsafe: every crate root (lib.rs, main.rs, each src/bin/*.rs).
    let mut roots: Vec<PathBuf> = [lib, src.join("main.rs")]
        .into_iter()
        .filter(|p| p.is_file())
        .collect();
    if let Ok(bins) = std::fs::read_dir(src.join("bin")) {
        for b in bins.flatten() {
            let p = b.path();
            if p.extension().is_some_and(|e| e == "rs") {
                roots.push(p);
            }
        }
    }
    for crate_root in &roots {
        let text = std::fs::read_to_string(crate_root).map_err(|e| e.to_string())?;
        if !text.contains("#![forbid(unsafe_code)]") {
            violations.push(format!(
                "{}:1: [forbid-unsafe] crate root lacks #![forbid(unsafe_code)]",
                rel(root, crate_root)
            ));
        }
    }

    let mut files = Vec::new();
    collect_rs_files(&src, &mut files)?;
    files.sort();
    for file in &files {
        let in_bin = file
            .strip_prefix(&src)
            .ok()
            .is_some_and(|p| p.starts_with("bin") || p == Path::new("main.rs"));
        let text = std::fs::read_to_string(file).map_err(|e| e.to_string())?;
        let unwrap_applies = is_library && !in_bin;
        let timing_applies = !TIMING_ALLOWED.contains(&name);
        let spawn_applies = !SPAWN_ALLOWED.contains(&name);
        check_file(
            &rel(root, file),
            &text,
            unwrap_applies,
            timing_applies,
            spawn_applies,
            violations,
        );
    }
    Ok(())
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(());
    };
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A `repolint-allow` waiver and the line it was written on.
#[derive(Clone)]
struct Waiver {
    /// The waived rule name.
    rule: String,
    /// 1-based line the waiver comment sits on (its origin, even when
    /// the waiver carries forward to the next code line).
    line: usize,
}

/// One source line after lexical stripping.
struct CodeLine {
    /// Line number (1-based).
    number: usize,
    /// The code with string/char literals blanked and comments removed.
    code: String,
    /// Rules waived on this line via `repolint-allow(...)` comments
    /// (here or on the directly preceding line).
    waived: Vec<Waiver>,
    /// Whether the line is inside a `#[cfg(test)]` item.
    in_test: bool,
    /// Whether the line is inside a `repolint-hot-start` … `-hot-end`
    /// region (marker lines inclusive).
    hot: bool,
}

fn check_file(
    path: &str,
    text: &str,
    unwrap_applies: bool,
    timing_applies: bool,
    spawn_applies: bool,
    violations: &mut Vec<String>,
) {
    use std::collections::{BTreeMap, BTreeSet};

    let lines = lex(text);
    // Every waiver minted in the file, keyed by (origin line, rule),
    // with whether its origin sits in test code (test waivers are inert
    // and exempt from staleness).
    let mut registry: BTreeMap<(usize, String), bool> = BTreeMap::new();
    for line in &lines {
        for w in &line.waived {
            registry
                .entry((w.line, w.rule.clone()))
                .or_insert(line.in_test);
        }
    }
    let mut used: BTreeSet<(usize, String)> = BTreeSet::new();

    for line in &lines {
        // Which rule patterns match this line, independent of whether
        // the rule applies here: a waiver over a matching pattern is
        // "used" even when the rule is off for this file, so moving a
        // waived line between library and binary code never strands it.
        let mut matched: Vec<&str> = Vec::new();
        if line.code.contains(".unwrap()") || line.code.contains(".expect(") {
            matched.push("unwrap");
        }
        if line.code.contains("Instant::now") || line.code.contains("SystemTime") {
            matched.push("timing");
        }
        if line.code.contains("thread::spawn") {
            matched.push("thread-spawn");
        }
        if line.hot && (line.code.contains("Vec::new()") || line.code.contains("vec![")) {
            matched.push("hot-alloc");
        }
        for rule in &matched {
            for w in &line.waived {
                if w.rule == *rule {
                    used.insert((w.line, w.rule.clone()));
                }
            }
        }
        if line.in_test {
            continue;
        }
        let waived = |rule: &str| line.waived.iter().any(|w| w.rule == rule);
        let mut report = |rule: &str, message: &str| {
            if !waived(rule) {
                violations.push(format!("{path}:{}: [{rule}] {message}", line.number));
            }
        };
        if unwrap_applies && matched.contains(&"unwrap") {
            report(
                "unwrap",
                "unwrap()/expect() in library code; return a Result or waive with a reason",
            );
        }
        if timing_applies && matched.contains(&"timing") {
            report(
                "timing",
                "wall-clock read outside billcap-obs/billcap-rt; use billcap_obs::Stopwatch",
            );
        }
        if spawn_applies && matched.contains(&"thread-spawn") {
            report(
                "thread-spawn",
                "raw thread outside billcap-rt; use the runtime crate's scoped pools",
            );
        }
        if matched.contains(&"hot-alloc") {
            report(
                "hot-alloc",
                "allocation inside a marked hot loop; hoist it into a reusable \
                 scratch buffer (see MonthScratch) or waive with a reason",
            );
        }
    }

    // Stale-waiver hygiene: a waiver that suppressed nothing is itself
    // a violation, reported at its own line.
    for ((line, rule), in_test) in &registry {
        if !in_test && !used.contains(&(*line, rule.clone())) {
            violations.push(format!(
                "{path}:{line}: [stale-waiver] repolint-allow({rule}) suppresses nothing; remove it"
            ));
        }
    }
}

/// Lexes a file into [`CodeLine`]s: strips `//` comments, `/* */` block
/// comments, string/char literals (so braces and pattern text inside
/// them are invisible), and tracks `#[cfg(test)]` items by brace depth.
fn lex(text: &str) -> Vec<CodeLine> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    // While `Some(d)`, we are inside a `#[cfg(test)]` item whose body
    // opened at depth `d`; lines are test code until depth returns to `d`.
    let mut test_until: Option<i64> = None;
    // A `#[cfg(test)]` attribute was seen; the next `{` opens its body.
    let mut pending_test = false;
    let mut in_block_comment = false;
    let mut prev_waivers: Vec<Waiver> = Vec::new();
    // While true, lines are inside a `repolint-hot-start` region.
    let mut in_hot = false;

    for (idx, raw) in text.lines().enumerate() {
        let in_test_at_start = test_until.is_some();
        let hot_at_start = in_hot;
        let mut hot_started = false;
        let mut hot_ended = false;
        let mut code = String::new();
        let mut waivers = prev_waivers.clone();
        let mut chars = raw.chars().peekable();
        while let Some(c) = chars.next() {
            if in_block_comment {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    in_block_comment = false;
                }
                continue;
            }
            match c {
                '/' if chars.peek() == Some(&'/') => {
                    // Line comment: scan it for waiver and hot-region
                    // directives, drop the rest. Doc comments (`///`,
                    // `//!`) are prose and never mint waivers, so the
                    // documented example above stays inert.
                    chars.next();
                    let comment: String = chars.collect();
                    let is_doc = comment.starts_with('/') || comment.starts_with('!');
                    if !is_doc {
                        if let Some(pos) = comment.find("repolint-allow(") {
                            let tail = &comment[pos + "repolint-allow(".len()..];
                            if let Some(end) = tail.find(')') {
                                waivers.push(Waiver {
                                    rule: tail[..end].trim().to_string(),
                                    line: idx + 1,
                                });
                            }
                        }
                    }
                    // Region directives must *lead* the comment, so prose
                    // that merely mentions them (like this file's docs)
                    // stays inert.
                    let directive = comment.trim_start_matches(['/', '!']).trim_start();
                    if directive.starts_with("repolint-hot-start") {
                        hot_started = true;
                    }
                    if directive.starts_with("repolint-hot-end") {
                        hot_ended = true;
                    }
                    break;
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    in_block_comment = true;
                }
                '"' => {
                    // String literal: skip to the unescaped closing quote.
                    code.push('"');
                    let mut escaped = false;
                    for s in chars.by_ref() {
                        if escaped {
                            escaped = false;
                        } else if s == '\\' {
                            escaped = true;
                        } else if s == '"' {
                            break;
                        }
                    }
                    code.push('"');
                }
                '\'' => {
                    // Char literal or lifetime. A char literal closes within
                    // a few characters; a lifetime has no closing quote.
                    let lookahead: String = chars.clone().take(3).collect();
                    let mut la = lookahead.chars();
                    match (la.next(), la.next(), la.next()) {
                        (Some('\\'), _, _) => {
                            // Escaped char literal: consume through the quote.
                            for s in chars.by_ref() {
                                if s == '\'' {
                                    break;
                                }
                            }
                        }
                        (Some(_), Some('\''), _) => {
                            chars.next();
                            chars.next();
                        }
                        _ => {} // lifetime: keep lexing normally
                    }
                    code.push('\'');
                }
                _ => code.push(c),
            }
        }

        if code.contains("#[cfg(test)]") {
            pending_test = true;
        }
        // Apply brace deltas, catching where a pending test body opens.
        // A test body that opens *and* closes on this line (single-line
        // `mod t { ... }`) still marks the whole line as test code.
        let mut touched_test = false;
        for c in code.chars() {
            match c {
                '{' => {
                    if pending_test && test_until.is_none() {
                        test_until = Some(depth);
                        pending_test = false;
                        touched_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_until.is_some_and(|d| depth <= d) {
                        test_until = None;
                    }
                }
                _ => {}
            }
        }

        // Waivers written on their own comment line apply to the next line.
        prev_waivers = if code.trim().is_empty() {
            waivers.clone()
        } else {
            Vec::new()
        };

        // Hot-region markers take effect on their own line too: a start
        // marker trailing code marks that line hot, an end marker's line
        // is still inside the region.
        if hot_started {
            in_hot = true;
        }
        let hot = hot_at_start || in_hot;
        if hot_ended {
            in_hot = false;
        }

        out.push(CodeLine {
            number: idx + 1,
            code,
            waived: waivers,
            in_test: in_test_at_start || test_until.is_some() || touched_test,
            hot,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_codes(src: &str) -> Vec<(usize, String, bool)> {
        lex(src)
            .into_iter()
            .map(|l| (l.number, l.code, l.in_test))
            .collect()
    }

    #[test]
    fn strips_line_comments_and_strings() {
        let ls = lex_codes("let x = \"Instant::now\"; // Instant::now\n");
        assert_eq!(ls[0].1, "let x = \"\"; ");
    }

    #[test]
    fn tracks_cfg_test_blocks() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let ls = lex_codes(src);
        assert!(!ls[0].2, "a() is not test code");
        assert!(ls[3].2, "body of tests mod is test code");
        assert!(ls[4].2, "closing brace line still test code");
        assert!(!ls[5].2, "c() after the mod is not test code");
    }

    #[test]
    fn format_string_braces_do_not_corrupt_depth() {
        let src = "#[cfg(test)]\nmod t {\n  let s = format!(\"{x:.3}}}\");\n}\nfn after() {}\n";
        let ls = lex_codes(src);
        assert!(!ls[4].2, "braces inside strings must not end the block");
    }

    #[test]
    fn waivers_apply_same_line_and_preceding_line() {
        let src = "\
a.unwrap(); // repolint-allow(unwrap): checked above
// repolint-allow(unwrap): also fine
b.unwrap();
c.unwrap();
";
        let mut v = Vec::new();
        check_file("f.rs", src, true, true, true, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].starts_with("f.rs:4:"));
    }

    #[test]
    fn rules_fire_outside_tests_only() {
        let src = "\
fn lib() { x.unwrap(); let t = Instant::now(); thread::spawn(f); }
#[cfg(test)]
mod tests { fn t() { y.unwrap(); Instant::now(); thread::spawn(g); } }
";
        let mut v = Vec::new();
        check_file("f.rs", src, true, true, true, &mut v);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|s| s.contains("f.rs:1:")));
    }

    #[test]
    fn char_literals_and_lifetimes_lex() {
        let src = "fn f<'a>(x: &'a str) { if c == '{' { } }\n";
        let ls = lex_codes(src);
        // The '{' char literal must not unbalance the braces.
        let mut depth = 0i64;
        for c in ls[0].1.chars() {
            if c == '{' {
                depth += 1;
            }
            if c == '}' {
                depth -= 1;
            }
        }
        assert_eq!(depth, 0, "{:?}", ls[0].1);
    }

    #[test]
    fn hot_regions_flag_allocations() {
        let src = "\
fn cold() { let a = Vec::new(); }
// repolint-hot-start(hour loop)
fn hot() {
    let b = Vec::new();
    let c = vec![1, 2];
    // repolint-allow(hot-alloc): filled once, reused after
    let d = vec![0.0; n];
}
// repolint-hot-end
fn cold_again() { let e = vec![3]; }
";
        let mut v = Vec::new();
        check_file("f.rs", src, false, false, false, &mut v);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(
            v[0].contains("f.rs:4:") && v[0].contains("hot-alloc"),
            "{v:?}"
        );
        assert!(v[1].contains("f.rs:5:"), "{v:?}");
    }

    #[test]
    fn hot_markers_in_strings_are_inert() {
        // The directive only counts inside comments: a string literal
        // mentioning the marker must not open a region.
        let src = "let s = \"repolint-hot-start\";\nlet v = Vec::new();\n";
        let mut v = Vec::new();
        check_file("f.rs", src, false, false, false, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn stale_waivers_are_reported() {
        let src = "\
a.unwrap(); // repolint-allow(unwrap): checked above
// repolint-allow(timing): nothing below reads the clock any more
let x = 1;
";
        let mut v = Vec::new();
        check_file("f.rs", src, true, true, true, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].starts_with("f.rs:2:") && v[0].contains("[stale-waiver]"),
            "{v:?}"
        );
    }

    #[test]
    fn waiver_over_matching_pattern_is_used_even_when_rule_is_off() {
        // unwrap does not apply (binary code), but the pattern matches:
        // the waiver is not stale, and nothing else fires.
        let src = "a.unwrap(); // repolint-allow(unwrap): startup path, panic is fine\n";
        let mut v = Vec::new();
        check_file("f.rs", src, false, true, true, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn waivers_in_test_code_are_exempt_from_staleness() {
        let src = "\
#[cfg(test)]
mod tests {
    // repolint-allow(unwrap): test scaffolding
    fn t() {}
}
";
        let mut v = Vec::new();
        check_file("f.rs", src, true, true, true, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn doc_comments_do_not_mint_waivers() {
        // A doc comment showing the waiver syntax must not create a
        // (necessarily stale) waiver.
        let src = "\
//! ```text
//! // repolint-allow(unwrap): length checked two lines above
//! ```
fn f() {}
";
        let mut v = Vec::new();
        check_file("f.rs", src, true, true, true, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn the_workspace_is_clean() {
        // When executed from the workspace (as cargo test does), the
        // repository itself must pass its own gate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let violations = run(&root).expect("workspace scan");
        assert!(violations.is_empty(), "{}", violations.join("\n"));
    }
}
