//! Per-server power model.

/// Linear utilization-to-power model of a single server:
/// `sp(u) = idle + (peak − idle) · u` (paper Section IV-B).
///
/// The paper's experiments quote a single per-server wattage per data
/// center (88.88 / 34.0 / 49.9 W) because the local optimizer packs active
/// servers to a fixed operating utilization; [`ServerModel::at_operating_point`]
/// constructs that degenerate-but-common case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerModel {
    /// Power at zero utilization (W).
    pub idle_w: f64,
    /// Power at 100 % utilization (W).
    pub peak_w: f64,
}

impl ServerModel {
    /// Creates a model; panics if `idle_w > peak_w` or either is negative.
    pub fn new(idle_w: f64, peak_w: f64) -> Self {
        assert!(
            idle_w >= 0.0 && peak_w >= 0.0,
            "powers must be non-negative"
        );
        assert!(idle_w <= peak_w, "idle power cannot exceed peak power");
        Self { idle_w, peak_w }
    }

    /// A model that draws exactly `watts` at the packed operating point —
    /// what the paper's per-server constants describe. Idle is set to the
    /// commonly measured ~60 % of peak so the utilization curve is still
    /// meaningful for ablations.
    pub fn at_operating_point(watts: f64, operating_utilization: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&operating_utilization) && operating_utilization > 0.0,
            "utilization must be in (0, 1]"
        );
        // Solve idle + (peak - idle) * u = watts with idle = 0.6 * peak.
        let peak = watts / (0.6 + 0.4 * operating_utilization);
        Self::new(0.6 * peak, peak)
    }

    /// Power draw at a given utilization in `[0, 1]`.
    pub fn power_at(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_w + (self.peak_w - self.idle_w) * u
    }

    /// The dynamic range `peak − idle` (W).
    pub fn dynamic_range_w(&self) -> f64 {
        self.peak_w - self.idle_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        let s = ServerModel::new(60.0, 100.0);
        assert_eq!(s.power_at(0.0), 60.0);
        assert_eq!(s.power_at(1.0), 100.0);
        assert_eq!(s.power_at(0.5), 80.0);
    }

    #[test]
    fn utilization_is_clamped() {
        let s = ServerModel::new(60.0, 100.0);
        assert_eq!(s.power_at(-1.0), 60.0);
        assert_eq!(s.power_at(2.0), 100.0);
    }

    #[test]
    fn operating_point_constructor_hits_target() {
        for u in [0.5, 0.8, 1.0] {
            let s = ServerModel::at_operating_point(88.88, u);
            assert!((s.power_at(u) - 88.88).abs() < 1e-9, "u={u}");
            assert!((s.idle_w - 0.6 * s.peak_w).abs() < 1e-9);
        }
    }

    #[test]
    fn dynamic_range() {
        let s = ServerModel::new(40.0, 90.0);
        assert_eq!(s.dynamic_range_w(), 50.0);
    }

    #[test]
    #[should_panic(expected = "idle power cannot exceed")]
    fn inverted_powers_rejected() {
        ServerModel::new(100.0, 50.0);
    }
}
