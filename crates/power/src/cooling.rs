//! Cooling-system power (paper eq. 7).
//!
//! The paper assumes an outside-air-economizer cooling strategy with a
//! *cooling efficiency* `coe`, defined as the heat removed by the cooling
//! system relative to the power the cooling system itself consumes. Since
//! in steady state the heat to remove equals the IT power (servers +
//! networking), the cooling power is `p_cooling = p_IT / coe`; colder
//! outside air yields a higher `coe` and lower cooling power.
//!
//! The paper's printed equation reads as a *product* (`coe · p_IT`), which
//! contradicts the stated semantics ("a lower temperature … means a higher
//! value of coe and more efficient cooling"); we implement the division
//! form by default and keep the product form available for ablation
//! (see DESIGN.md).

/// Which algebraic form to use for the cooling power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoolingForm {
    /// `p_cooling = p_IT / coe` — efficiency semantics (default).
    #[default]
    Efficiency,
    /// `p_cooling = coe · p_IT` — the paper's printed product form, where
    /// `coe` acts as an overhead factor.
    Overhead,
}

/// Cooling model for one data center.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoolingModel {
    /// Cooling efficiency `coe` (heat removed per watt of cooling power).
    pub coe: f64,
    pub form: CoolingForm,
}

impl CoolingModel {
    /// Creates an efficiency-form model; panics on non-positive `coe`.
    pub fn new(coe: f64) -> Self {
        assert!(coe > 0.0, "cooling efficiency must be positive");
        Self {
            coe,
            form: CoolingForm::Efficiency,
        }
    }

    /// Creates a model with an explicit form.
    pub fn with_form(coe: f64, form: CoolingForm) -> Self {
        assert!(coe > 0.0, "cooling efficiency must be positive");
        Self { coe, form }
    }

    /// Cooling power (W) required to remove the heat produced by `it_power_w`
    /// of IT equipment.
    pub fn cooling_power_w(&self, it_power_w: f64) -> f64 {
        assert!(it_power_w >= 0.0, "IT power must be non-negative");
        match self.form {
            CoolingForm::Efficiency => it_power_w / self.coe,
            CoolingForm::Overhead => it_power_w * self.coe,
        }
    }

    /// The multiplier `total / IT` implied by this model
    /// (`1 + 1/coe` or `1 + coe`): a PUE-like figure restricted to cooling.
    pub fn overhead_factor(&self) -> f64 {
        match self.form {
            CoolingForm::Efficiency => 1.0 + 1.0 / self.coe,
            CoolingForm::Overhead => 1.0 + self.coe,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_form_divides() {
        let c = CoolingModel::new(1.94);
        assert!((c.cooling_power_w(1940.0) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_form_multiplies() {
        let c = CoolingModel::with_form(0.5, CoolingForm::Overhead);
        assert_eq!(c.cooling_power_w(1000.0), 500.0);
    }

    #[test]
    fn higher_coe_means_less_cooling_power() {
        let cold_site = CoolingModel::new(1.94);
        let warm_site = CoolingModel::new(1.39);
        assert!(cold_site.cooling_power_w(1e6) < warm_site.cooling_power_w(1e6));
    }

    #[test]
    fn overhead_factor_consistency() {
        let c = CoolingModel::new(2.0);
        let it = 1000.0;
        let total = it + c.cooling_power_w(it);
        assert!((total / it - c.overhead_factor()).abs() < 1e-12);
    }

    #[test]
    fn zero_it_power_needs_no_cooling() {
        assert_eq!(CoolingModel::new(1.5).cooling_power_w(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_coe_rejected() {
        CoolingModel::new(0.0);
    }
}
