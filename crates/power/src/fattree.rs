//! k-ary fat-tree networking power (paper eq. 6).
//!
//! A k-ary fat tree has `k` pods of `k/2` edge and `k/2` aggregation
//! switches each, plus `(k/2)²` core switches, and supports `k³/4` servers.
//! Per active server the topology therefore needs `2/k` edge, `2/k`
//! aggregation and `1/k` core switches. With ElasticTree-style
//! consolidation the number of *active* switches tracks the active-server
//! count at exactly these ratios (rounded up to whole switches), and since
//! today's switches are not energy proportional each active switch draws
//! its full constant power.

/// Power of one switch at each tier (W). The paper's three data centers
/// use (84, 84, 240), (70, 70, 260) and (75, 75, 240).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchPower {
    pub edge_w: f64,
    pub aggregation_w: f64,
    pub core_w: f64,
}

/// Active switch counts at each tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchCounts {
    pub edge: u64,
    pub aggregation: u64,
    pub core: u64,
}

impl SwitchCounts {
    /// Total active switches.
    pub fn total(&self) -> u64 {
        self.edge + self.aggregation + self.core
    }
}

/// A k-ary fat tree with per-tier switch powers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FatTree {
    /// Port count / arity `k` (must be even and at least 2).
    pub k: u64,
    pub switch_power: SwitchPower,
}

impl FatTree {
    /// Creates a fat tree of arity `k`.
    pub fn new(k: u64, switch_power: SwitchPower) -> Self {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree arity must be even and >= 2"
        );
        Self { k, switch_power }
    }

    /// Picks the smallest even `k` whose fat tree hosts at least
    /// `min_servers` servers.
    pub fn for_capacity(min_servers: u64, switch_power: SwitchPower) -> Self {
        let mut k = 4u64;
        while k * k * k / 4 < min_servers {
            k += 2;
        }
        Self::new(k, switch_power)
    }

    /// Maximum servers the topology supports (`k³/4`).
    pub fn max_servers(&self) -> u64 {
        self.k * self.k * self.k / 4
    }

    /// Total switches when fully built out.
    pub fn total_switches(&self) -> SwitchCounts {
        SwitchCounts {
            edge: self.k * self.k / 2,
            aggregation: self.k * self.k / 2,
            core: self.k * self.k / 4,
        }
    }

    /// Active switches needed for `active_servers` (ceil of the
    /// proportional requirement, clamped to the physical total).
    pub fn active_switches(&self, active_servers: u64) -> SwitchCounts {
        let totals = self.total_switches();
        let need = |per_server_num: u64, cap: u64| -> u64 {
            // per-server ratio is per_server_num / k.
            let exact = (active_servers as f64) * per_server_num as f64 / self.k as f64;
            (exact.ceil() as u64).min(cap)
        };
        SwitchCounts {
            edge: need(2, totals.edge),
            aggregation: need(2, totals.aggregation),
            core: need(1, totals.core),
        }
    }

    /// Networking power (W) for `active_servers`, with integral switch
    /// counts — paper eq. (6).
    pub fn networking_power_w(&self, active_servers: u64) -> f64 {
        let c = self.active_switches(active_servers);
        c.edge as f64 * self.switch_power.edge_w
            + c.aggregation as f64 * self.switch_power.aggregation_w
            + c.core as f64 * self.switch_power.core_w
    }

    /// Linearized networking power per active server (W/server): the
    /// coefficient used by the MILP. Exact power differs from
    /// `coefficient * n` by at most three switches' worth (the ceils).
    pub fn watts_per_server(&self) -> f64 {
        (2.0 * self.switch_power.edge_w
            + 2.0 * self.switch_power.aggregation_w
            + self.switch_power.core_w)
            / self.k as f64
    }

    /// Networking power with *no* ElasticTree consolidation: every switch
    /// of the built-out topology stays powered regardless of load. The
    /// paper's networking model assumes consolidation tracks the active
    /// servers; this is the baseline ElasticTree (NSDI'10) improves on,
    /// used by the networking-consolidation ablation.
    pub fn always_on_power_w(&self) -> f64 {
        let t = self.total_switches();
        t.edge as f64 * self.switch_power.edge_w
            + t.aggregation as f64 * self.switch_power.aggregation_w
            + t.core as f64 * self.switch_power.core_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> SwitchPower {
        SwitchPower {
            edge_w: 84.0,
            aggregation_w: 84.0,
            core_w: 240.0,
        }
    }

    #[test]
    fn k4_structure_matches_al_fares() {
        // The canonical k=4 example: 16 servers, 8 edge, 8 agg, 4 core.
        let t = FatTree::new(4, sp());
        assert_eq!(t.max_servers(), 16);
        let total = t.total_switches();
        assert_eq!((total.edge, total.aggregation, total.core), (8, 8, 4));
    }

    #[test]
    fn full_load_activates_every_switch() {
        let t = FatTree::new(4, sp());
        assert_eq!(t.active_switches(16), t.total_switches());
    }

    #[test]
    fn zero_servers_need_no_switches() {
        let t = FatTree::new(8, sp());
        assert_eq!(t.active_switches(0).total(), 0);
        assert_eq!(t.networking_power_w(0), 0.0);
    }

    #[test]
    fn switch_counts_monotone_in_servers() {
        let t = FatTree::new(16, sp());
        let mut prev = 0;
        for n in 0..=t.max_servers() {
            let c = t.active_switches(n).total();
            assert!(c >= prev, "n={n}");
            prev = c;
        }
    }

    #[test]
    fn linear_coefficient_tracks_exact_power() {
        let t = FatTree::for_capacity(300_000, sp());
        let coeff = t.watts_per_server();
        for n in [1_000u64, 50_000, 150_000, 299_999] {
            let exact = t.networking_power_w(n);
            let linear = coeff * n as f64;
            // Ceils cost at most one switch per tier.
            let max_err = sp().edge_w + sp().aggregation_w + sp().core_w;
            assert!(
                (exact - linear).abs() <= max_err,
                "n={n}: exact {exact} vs linear {linear}"
            );
        }
    }

    #[test]
    fn capacity_picker_is_tight() {
        let t = FatTree::for_capacity(300_000, sp());
        assert!(t.max_servers() >= 300_000);
        // One size smaller must not suffice.
        let smaller = t.k - 2;
        assert!(smaller * smaller * smaller / 4 < 300_000);
    }

    #[test]
    fn networking_power_is_positive_and_bounded() {
        let t = FatTree::for_capacity(300_000, sp());
        let full = t.networking_power_w(t.max_servers());
        let totals = t.total_switches();
        let expected = totals.edge as f64 * 84.0
            + totals.aggregation as f64 * 84.0
            + totals.core as f64 * 240.0;
        assert_eq!(full, expected);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_arity_rejected() {
        FatTree::new(5, sp());
    }

    #[test]
    fn always_on_dominates_consolidated() {
        let t = FatTree::for_capacity(300_000, sp());
        let always = t.always_on_power_w();
        for n in [0u64, 1_000, 150_000, t.max_servers()] {
            assert!(t.networking_power_w(n) <= always + 1e-9, "n={n}");
        }
        // At full build-out the two coincide.
        assert_eq!(t.networking_power_w(t.max_servers()), always);
    }
}
