//! # billcap-power
//!
//! Data-center power models for the `billcap` reproduction of *Electricity
//! Bill Capping for Cloud-Scale Data Centers that Impact the Power Markets*
//! (ICPP 2012).
//!
//! The paper models a data center's power draw as the sum of three parts
//! (its equation 4), all driven by the number of active servers `n` chosen
//! by the local optimizer:
//!
//! * **Servers** ([`server`]): `p_server = n · sp`, with per-server power a
//!   linear function of utilization (`sp = I + (D − I)·u`). The local
//!   optimizer keeps active servers near full utilization, so the
//!   experiments use the operating-point power directly.
//! * **Networking** ([`fattree`]): a k-ary fat-tree topology whose active
//!   edge/aggregation/core switch counts grow proportionally with the
//!   active servers (ElasticTree-style consolidation); switches themselves
//!   are *not* energy proportional, so each active switch draws its full
//!   constant power.
//! * **Cooling** ([`cooling`]): an outside-air-economizer model with a
//!   cooling efficiency `coe` — heat removed per watt spent on cooling —
//!   so `p_cooling = (p_server + p_networking) / coe`.
//!
//! [`DcPowerModel`] composes the three and exposes both the exact
//! (integral switch counts) evaluation used by the simulator and the
//! *linearized* watts-per-active-server coefficient used by the MILP
//! formulation in `billcap-core`.

#![forbid(unsafe_code)]

pub mod cooling;
pub mod datacenter;
pub mod fattree;
pub mod server;

pub use cooling::{CoolingForm, CoolingModel};
pub use datacenter::{DcPowerBreakdown, DcPowerModel};
pub use fattree::{FatTree, SwitchCounts, SwitchPower};
pub use server::ServerModel;
