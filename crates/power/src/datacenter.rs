//! Composite data-center power model (paper eq. 4).

use crate::cooling::CoolingModel;
use crate::fattree::FatTree;
use crate::server::ServerModel;

/// Breakdown of a data center's power draw (all in watts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcPowerBreakdown {
    pub servers_w: f64,
    pub networking_w: f64,
    pub cooling_w: f64,
}

impl DcPowerBreakdown {
    /// Total power (W).
    pub fn total_w(&self) -> f64 {
        self.servers_w + self.networking_w + self.cooling_w
    }

    /// Total power (MW) — the unit the pricing policies speak.
    pub fn total_mw(&self) -> f64 {
        self.total_w() / 1e6
    }
}

/// Full power model of one data center: servers + fat-tree networking +
/// cooling, all driven by the active-server count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcPowerModel {
    pub server: ServerModel,
    /// Utilization the local optimizer packs active servers to.
    pub operating_utilization: f64,
    pub network: FatTree,
    pub cooling: CoolingModel,
}

impl DcPowerModel {
    /// Creates the composite model.
    pub fn new(
        server: ServerModel,
        operating_utilization: f64,
        network: FatTree,
        cooling: CoolingModel,
    ) -> Self {
        assert!(
            operating_utilization > 0.0 && operating_utilization <= 1.0,
            "operating utilization must be in (0, 1]"
        );
        Self {
            server,
            operating_utilization,
            network,
            cooling,
        }
    }

    /// Per-server power at the packed operating point (W).
    pub fn server_watts(&self) -> f64 {
        self.server.power_at(self.operating_utilization)
    }

    /// Exact power breakdown for `active_servers` (integral switch counts).
    pub fn breakdown(&self, active_servers: u64) -> DcPowerBreakdown {
        let servers_w = active_servers as f64 * self.server_watts();
        let networking_w = self.network.networking_power_w(active_servers);
        let cooling_w = self.cooling.cooling_power_w(servers_w + networking_w);
        DcPowerBreakdown {
            servers_w,
            networking_w,
            cooling_w,
        }
    }

    /// Exact total power in MW for `active_servers`.
    pub fn total_mw(&self, active_servers: u64) -> f64 {
        self.breakdown(active_servers).total_mw()
    }

    /// Linearized total watts per active server — the single coefficient
    /// the MILP multiplies by the (continuous) server count:
    /// `(sp + net_per_server) · (1 + cooling overhead)`.
    pub fn watts_per_server(&self) -> f64 {
        (self.server_watts() + self.network.watts_per_server()) * self.cooling.overhead_factor()
    }

    /// Server-only watts per server (what the Min-Only baselines model:
    /// they ignore networking and cooling).
    pub fn server_only_watts_per_server(&self) -> f64 {
        self.server_watts()
    }

    /// Maximum servers this data center can host (topology bound).
    pub fn max_servers(&self) -> u64 {
        self.network.max_servers()
    }

    /// Largest active-server count whose total power stays within
    /// `cap_mw` (using the linearized model; the exact model differs by at
    /// most a few switches' worth of power).
    pub fn servers_within_power_cap(&self, cap_mw: f64) -> u64 {
        let per_server_mw = self.watts_per_server() / 1e6;
        let n = (cap_mw / per_server_mw).floor().max(0.0) as u64;
        n.min(self.max_servers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::SwitchPower;

    fn dc1() -> DcPowerModel {
        // Paper DC1: 88.88 W/server, switches (84, 84, 240) W, coe 1.94.
        DcPowerModel::new(
            ServerModel::at_operating_point(88.88, 1.0),
            1.0,
            FatTree::for_capacity(
                300_000,
                SwitchPower {
                    edge_w: 84.0,
                    aggregation_w: 84.0,
                    core_w: 240.0,
                },
            ),
            CoolingModel::new(1.94),
        )
    }

    #[test]
    fn breakdown_components_sum() {
        let m = dc1();
        let b = m.breakdown(100_000);
        assert!((b.total_w() - (b.servers_w + b.networking_w + b.cooling_w)).abs() < 1e-9);
        assert!(b.servers_w > 0.0 && b.networking_w > 0.0 && b.cooling_w > 0.0);
    }

    #[test]
    fn server_power_dominates_but_not_alone() {
        // The paper's motivation: cooling + networking are up to ~50 % of
        // the total, so ignoring them misprices the optimization.
        let m = dc1();
        let b = m.breakdown(200_000);
        let non_server = b.networking_w + b.cooling_w;
        let share = non_server / b.total_w();
        assert!(
            share > 0.2 && share < 0.6,
            "non-server share {share} out of expected band"
        );
    }

    #[test]
    fn linear_coefficient_is_accurate_at_scale() {
        let m = dc1();
        for n in [10_000u64, 100_000, 250_000] {
            let exact = m.breakdown(n).total_w();
            let linear = m.watts_per_server() * n as f64;
            let rel = (exact - linear).abs() / exact;
            assert!(rel < 1e-3, "n={n}: rel err {rel}");
        }
    }

    #[test]
    fn total_mw_scale_matches_paper_claims() {
        // 300k active servers should draw tens of MW (paper Section I).
        let m = dc1();
        let mw = m.total_mw(300_000);
        assert!(mw > 10.0 && mw < 100.0, "total {mw} MW");
    }

    #[test]
    fn power_cap_inversion() {
        let m = dc1();
        let cap_mw = 20.0;
        let n = m.servers_within_power_cap(cap_mw);
        let linear_mw = m.watts_per_server() * n as f64 / 1e6;
        assert!(linear_mw <= cap_mw);
        let one_more = m.watts_per_server() * (n + 1) as f64 / 1e6;
        assert!(one_more > cap_mw);
    }

    #[test]
    fn zero_servers_zero_power() {
        let m = dc1();
        assert_eq!(m.total_mw(0), 0.0);
    }

    #[test]
    fn cap_never_exceeds_topology() {
        let m = dc1();
        assert_eq!(m.servers_within_power_cap(1e9), m.max_servers());
    }
}
