//! Heterogeneous fleet: the paper's Section IX future-work extension.
//!
//! Real data centers accumulate server generations with different speeds
//! and power draws. The heterogeneous local optimizer activates classes in
//! efficiency order (watt-hours per request), spilling to older hardware
//! only when the new fleet saturates — and the resulting power curve is
//! piecewise linear rather than the homogeneous model's single slope.
//!
//! Paper anchors: Section IX names heterogeneous servers as the first
//! extension of the homogeneous power model of Section IV; this
//! example quantifies what that model hides (the efficiency spread
//! between generations and the convex kinks it puts in power-vs-load).
//!
//! Run with: `cargo run --release --example hetero_fleet`

use billcap::core::hetero::{HeteroDataCenter, ServerClass};

fn main() {
    // A site that grew through three hardware generations.
    let site = HeteroDataCenter::new(
        vec![
            ServerClass {
                name: "gen1-athlon".into(),
                watts: 88.88,
                service_rate: 500.0,
                count: 120_000,
            },
            ServerClass {
                name: "gen2-xeon".into(),
                watts: 62.0,
                service_rate: 650.0,
                count: 90_000,
            },
            ServerClass {
                name: "gen3-epyc".into(),
                watts: 48.0,
                service_rate: 900.0,
                count: 60_000,
            },
        ],
        1.5 / 500.0, // response-time target reachable by every class
        1.0,
    );

    println!("class efficiency (watt-hours per request):");
    for (i, class) in site.classes.iter().enumerate() {
        println!(
            "  {:<12} {:>7.4} Wh/req  capacity {:>6.1}M req/h",
            class.name,
            class.watt_hours_per_request(),
            site.class_capacity(i) / 1e6
        );
    }
    println!("site capacity: {:.1}M req/h\n", site.capacity() / 1e6);

    println!(
        "{:>14}  {:>10}  {:>28}",
        "load (Mreq/h)", "power (MW)", "active servers by class"
    );
    for step in 1..=10 {
        let rate = site.capacity() * step as f64 / 10.0 * 0.999;
        let plan = site.activate(rate).expect("within capacity");
        let detail: Vec<String> = plan
            .entries
            .iter()
            .map(|e| format!("{}:{}", site.classes[e.class_index].name, e.servers))
            .collect();
        println!(
            "{:>14.1}  {:>10.2}  {}",
            rate / 1e6,
            plan.power_w / 1e6,
            detail.join("  ")
        );
    }

    println!(
        "\nthe newest generation fills first; older generations only wake up as the \
         load approaches site capacity, so the marginal watt-hours per request rise \
         in steps — a piecewise-linear power curve the MILP can adopt per segment."
    );
}
