//! Risk sweep: Monte-Carlo bill distributions under uncertainty, at
//! several budgets and under a thermal cap derating.
//!
//! Paper anchors: Figure 9's budget-violation behavior and Figure 10's
//! budget ladder, extended from point estimates to distributions — the
//! question an operator actually faces is "what is the P99 bill and how
//! often does the capper overshoot the budget", not "what happens under
//! one seed". Each sample perturbs workload level and growth, may add an
//! extra flash crowd, shifts background demand, and distorts the
//! budgeting history (predictor error); the capper and the Min-Only
//! baseline run on identical inputs per sample.
//!
//! Run with: `cargo run --release --example risk_sweep`

use billcap::sim::risk::{RiskConfig, RiskEngine, ScheduleSpec};
use billcap::sim::Scenario;

fn main() {
    // One simulated week per sample keeps the sweep fast; budgets are
    // pro-rated from the paper's monthly ladder accordingly.
    const HOURS: usize = 168;
    const SAMPLES: usize = 16;
    let frac = HOURS as f64 / 720.0;

    println!("{SAMPLES} perturbed samples per cell, {HOURS}-hour horizon, policy 1\n");
    println!(
        "{:>9}  {:>9}  {:>11}  {:>11}  {:>11}  {:>9}  {:>9}",
        "budget", "schedule", "P50 bill", "P95 bill", "P99 bill", "P(viol)", "savings"
    );

    for &monthly in &[1_000_000.0, Scenario::STRINGENT_BUDGET, 2_000_000.0] {
        for schedule in [ScheduleSpec::Flat, ScheduleSpec::Derate { depth: 0.25 }] {
            let config = RiskConfig {
                samples: SAMPLES,
                hours: HOURS,
                monthly_budget: Some(monthly * frac),
                schedule,
                ..RiskConfig::default()
            };
            let (_, summary) = RiskEngine::new(config).run().expect("risk run");
            println!(
                "{:>9}  {:>9}  {:>11}  {:>11}  {:>11}  {:>8.0}%  {:>8.1}%",
                format!("${:.1}M", monthly / 1e6),
                match schedule {
                    ScheduleSpec::Flat => "flat",
                    ScheduleSpec::Derate { .. } => "derate",
                },
                format!("${:.0}k", summary.bill.p50 / 1e3),
                format!("${:.0}k", summary.bill.p95 / 1e3),
                format!("${:.0}k", summary.bill.p99 / 1e3),
                100.0 * summary.violation_probability,
                100.0 * summary.savings_ratio.p50,
            );
        }
    }

    println!(
        "\nthe bill distribution tightens as the budget grows (the capper has \
         room to absorb bad draws), derated caps raise the tail quantiles, \
         and the median savings vs Min-Only persist across every cell."
    );
}
