//! Price maker: how a cloud-scale data center moves its own electricity
//! price — the paper's central premise.
//!
//! Part 1 regenerates the locational pricing policies from the PJM
//! five-bus system by sweeping the system load through a DC optimal power
//! flow (the paper's Figure 1).
//!
//! Part 2 sweeps one data center's request load and shows the regional
//! price stepping up as the data center's draw crosses LMP breakpoints —
//! exactly the effect the Min-Only baselines ignore.
//!
//! Paper anchors: Figure 1 (the step-shaped locational pricing policies)
//! and the central claim that a cloud-scale consumer is a price *maker*,
//! not a price taker — the premise behind every Figure 3/4 comparison
//! against price-blind minimization.
//!
//! Run with: `cargo run --release --example price_maker`

use billcap::core::DataCenterSystem;
use billcap::market::fivebus;

fn main() {
    // ---- Part 1: LMP step policies from first principles ----------------
    println!("PJM five-bus LMP sweep (uniform load at consumers B, C, D):\n");
    println!(
        "{:>10}  {:>8}  {:>8}  {:>8}",
        "load (MW)", "LMP@B", "LMP@C", "LMP@D"
    );
    let policies = fivebus::derive_policies(900.0, 50.0).expect("five-bus connected");
    let n = policies[0].1.len();
    for i in 0..n {
        let load = policies[0].1[i].0;
        println!(
            "{:>10.0}  {:>8.2}  {:>8.2}  {:>8.2}",
            load, policies[0].1[i].1, policies[1].1[i].1, policies[2].1[i].1
        );
    }
    println!("\nfitted step policies:");
    for (consumer, _, policy) in &policies {
        let desc: Vec<String> = policy
            .levels()
            .map(|(lo, hi, p)| {
                if hi.is_finite() {
                    format!("[{lo:.0}-{hi:.0}) ${p:.2}")
                } else {
                    format!("[{lo:.0}+) ${p:.2}")
                }
            })
            .collect();
        println!("  consumer {consumer:?}: {}", desc.join("  "));
    }

    // ---- Part 2: the data center as price maker -------------------------
    println!("\nData center 1 as a price maker (background demand 360 MW):");
    println!(
        "{:>14}  {:>9}  {:>11}  {:>12}  {:>12}",
        "load (Mreq/h)", "DC (MW)", "region (MW)", "price $/MWh", "hour cost $"
    );
    let system = DataCenterSystem::paper_system(1);
    let dc = &system.sites[0];
    let policy = system.policy(0);
    let background = 360.0;
    let mut last_price = -1.0;
    for step in 0..=20 {
        let lambda = dc.max_rate() * step as f64 / 20.0;
        let power = dc.power_for_rate_mw(lambda);
        let region = power + background;
        let price = policy.price_at(region);
        let marker = if price > last_price && last_price >= 0.0 {
            "  <- price step"
        } else {
            ""
        };
        println!(
            "{:>14.1}  {:>9.1}  {:>11.1}  {:>12.2}  {:>12.0}{marker}",
            lambda / 1e6,
            power,
            region,
            price,
            price * power
        );
        last_price = price;
    }
    println!(
        "\nA price-taker model bills the whole sweep at a constant price; the real \
         market steps the price up on the *entire* draw as the region crosses each \
         breakpoint."
    );
}
