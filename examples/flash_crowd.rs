//! Flash crowd: the "breaking news" scenario from the paper's
//! introduction.
//!
//! A news event multiplies traffic for several hours. Without bill
//! capping, the provider simply eats the cost; with it, the budgeter's
//! hourly allotments force admission control on ordinary customers while
//! premium customers keep full QoS.
//!
//! Paper anchors: the stringent-budget behavior of Figures 7/8 — hours
//! that serve zero ordinary requests and hours that *violate* their
//! allotment because premium QoS is mandatory (the "premium override"
//! outcome) cluster exactly around the crowd.
//!
//! Run with: `cargo run --release --example flash_crowd`

use billcap::core::evaluate_allocation;
use billcap::core::BillCapper;
use billcap::core::DataCenterSystem;
use billcap::workload::{Budgeter, CustomerSplit, FlashCrowd, TraceConfig, TraceGenerator};

fn main() {
    let system = DataCenterSystem::paper_system(1);
    let split = CustomerSplit::paper_default();

    // Two days of traffic with a violent flash crowd on day two at 18:00.
    let config = TraceConfig {
        mean_rate: 7.0e8,
        flash_crowds: vec![FlashCrowd {
            start_hour: 42,
            magnitude: 1.6,
            duration_hours: 7,
        }],
        seed: 7,
        ..Default::default()
    };
    let trace = TraceGenerator::new(config).generate(48);

    // The budgeter learns hour-of-week weights from two weeks of *normal*
    // history — the flash crowd is exactly the event the budget did not
    // anticipate. The weekly budget is sized snugly for normal traffic.
    let history_config = TraceConfig {
        mean_rate: 7.0e8,
        seed: 7,
        ..Default::default()
    };
    let history = TraceGenerator::new(history_config).generate(2 * 168);
    let weekly_budget = 340_000.0;
    let mut budgeter = Budgeter::from_history(weekly_budget, &history, 168);

    let capper = BillCapper::default();
    println!("hour  offered(M)  premium(M)  ord served(M)  cost($)  budget($)  outcome");
    let mut total_cost = 0.0;
    for t in 0..trace.len() {
        let offered = trace.at(t);
        let premium = split.premium(offered);
        // Background demand follows a simple diurnal curve here.
        let phase = (t % 24) as f64 / 24.0 * std::f64::consts::TAU;
        let background = [
            360.0 + 60.0 * phase.sin(),
            410.0 + 70.0 * phase.sin(),
            430.0 + 65.0 * phase.sin(),
        ];
        let hourly_budget = budgeter.hourly_budget();
        let decision = capper
            .decide_hour(&system, offered, premium, &background, hourly_budget)
            .expect("feasible hour");
        let realized = evaluate_allocation(&system, &decision.allocation.lambda, &background);
        budgeter.record_spend(realized.total_cost);
        total_cost += realized.total_cost;
        let marker = match decision.outcome {
            billcap::core::HourOutcome::WithinBudget => "",
            billcap::core::HourOutcome::Throttled => "  <- throttled",
            billcap::core::HourOutcome::PremiumOverride => "  <- premium override",
        };
        println!(
            "{t:>4}  {:>10.1}  {:>10.1}  {:>13.1}  {:>7.0}  {:>9.0}{marker}",
            offered / 1e6,
            decision.premium_served / 1e6,
            decision.ordinary_served / 1e6,
            realized.total_cost,
            hourly_budget
        );
    }
    println!(
        "\ntwo-day cost ${total_cost:.0}; premium QoS was guaranteed in every hour, \
         the flash crowd was absorbed by shedding ordinary traffic."
    );
}
