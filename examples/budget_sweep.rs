//! Budget sweep: a full month of bill capping under each budget of the
//! paper's ladder (its Figure 10), using the simulation harness.
//!
//! Paper anchors: Figure 10's claims that premium throughput is pinned
//! at 100 % for *every* budget while ordinary throughput grows
//! monotonically with it, and Figure 9's observation that the bill only
//! exceeds the budget when premium traffic alone does.
//!
//! Run with: `cargo run --release --example budget_sweep`

use billcap::sim::{run_month, Scenario, Strategy};

fn main() {
    let scenario = Scenario::paper_default(1, 42);
    println!(
        "simulating {} hours across {} data centers; offered traffic mean {:.0}M req/h\n",
        scenario.horizon(),
        scenario.system.len(),
        scenario.workload.mean() / 1e6
    );
    println!(
        "{:>12}  {:>12}  {:>13}  {:>11}  {:>10}  {:>13}",
        "budget", "premium tput", "ordinary tput", "cost", "cost/budget", "starved hours"
    );
    for budget in Scenario::BUDGET_LADDER {
        let report =
            run_month(&scenario, Strategy::CostCapping, Some(budget)).expect("month simulates");
        let starved = report
            .hours
            .iter()
            .filter(|h| h.ordinary_offered > 0.0 && h.ordinary_served <= 0.0)
            .count();
        println!(
            "{:>12}  {:>11.1}%  {:>12.1}%  {:>11.0}  {:>11.3}  {:>13}",
            format!("${:.1}M", budget / 1e6),
            100.0 * report.premium_throughput(),
            100.0 * report.ordinary_throughput(),
            report.total_cost(),
            report.budget_utilization().unwrap_or(f64::NAN),
            starved
        );
    }
    println!(
        "\npremium customers are served in full at every budget; ordinary throughput \
         rises monotonically with the budget and the bill tracks the cap."
    );
}
