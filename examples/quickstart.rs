//! Quickstart: one budgeted hour of the bill capper.
//!
//! Builds the paper's three-data-center system, offers it an hour of
//! traffic, and shows the two-step decision: where the requests go, what
//! each region's electricity price becomes, and what the hour costs.
//!
//! Paper anchors: the two-step optimization of Section III (minimize
//! cost subject to full QoS, then throttle ordinary traffic only if the
//! hourly allotment is exceeded) and the Figures 5–8 claim that premium
//! customers keep full QoS under any budget — the stringent-budget run
//! below ends in a premium override rather than premium loss.
//!
//! Run with: `cargo run --release --example quickstart`

use billcap::core::{BillCapper, DataCenterSystem, HourOutcome};

fn main() {
    // The paper's simulated system: three geographically distributed data
    // centers under the five-level locational pricing policies (Policy 1).
    let system = DataCenterSystem::paper_system(1);

    // This hour: 800M requests offered, 80% from premium customers.
    let offered = 8.0e8;
    let premium = 0.8 * offered;
    // Regional background demand (MW) reported by each ISO.
    let background = [360.0, 410.0, 430.0];

    let capper = BillCapper::default();

    println!("== Generous budget: everything is served ==");
    let generous = capper
        .decide_hour(&system, offered, premium, &background, 50_000.0)
        .expect("feasible hour");
    print_decision(&system, &background, &generous);

    println!("\n== Tight budget: ordinary traffic is throttled ==");
    let tight = capper
        .decide_hour(&system, offered, premium, &background, 2_300.0)
        .expect("feasible hour");
    print_decision(&system, &background, &tight);

    println!("\n== Starvation budget: premium QoS overrides the budget ==");
    let starved = capper
        .decide_hour(&system, offered, premium, &background, 100.0)
        .expect("feasible hour");
    print_decision(&system, &background, &starved);
}

fn print_decision(
    system: &DataCenterSystem,
    background: &[f64],
    decision: &billcap::core::HourDecision,
) {
    let outcome = match decision.outcome {
        HourOutcome::WithinBudget => "within budget",
        HourOutcome::Throttled => "ordinary traffic throttled",
        HourOutcome::PremiumOverride => "premium override (budget violated)",
    };
    println!(
        "outcome: {outcome}; premium served {:.0}M/h, ordinary served {:.0}M/h",
        decision.premium_served / 1e6,
        decision.ordinary_served / 1e6
    );
    let alloc = &decision.allocation;
    for (i, site) in system.sites.iter().enumerate() {
        println!(
            "  {:<14} load {:>6.1}M req/h  {:>7} servers  {:>6.1} MW  region {:>6.1} MW  \
             price ${:>5.2}/MWh  cost ${:.0}",
            site.name,
            alloc.lambda[i] / 1e6,
            alloc.servers[i],
            alloc.power_mw[i],
            alloc.power_mw[i] + background[i],
            alloc.price[i],
            alloc.cost[i]
        );
    }
    println!(
        "  hour cost ${:.0} vs budget ${:.0}{}",
        decision.cost(),
        decision.budget,
        if decision.violates_budget() {
            "  (VIOLATED to protect premium QoS)"
        } else {
            ""
        }
    );
}
